// Package irbuild lowers a type-checked mini-C AST into the register IR.
//
// Locals (including parameters) live in stack slots created by Alloca so
// that address-of and reassignment need no SSA construction; arrays decay
// to their slot address. Pointer arithmetic is lowered to explicit byte
// arithmetic, so after this point the program is just integer math over
// two address spaces — exactly the untyped setting CGCM's run-time library
// is designed for.
package irbuild

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cgcm/internal/ir"
	"cgcm/internal/minic/ast"
	"cgcm/internal/minic/sema"
	"cgcm/internal/minic/token"
	"cgcm/internal/minic/types"
)

// Build lowers the checked file to an IR module. The returned module
// contains a synthetic "__cgcm_init" function when global initializers
// require run-time address computation (e.g. arrays of string pointers);
// the interpreter runs it before main.
func Build(info *sema.Info) (*ir.Module, error) {
	b := &builder{
		info:    info,
		m:       ir.NewModule(info.File.Name),
		vars:    make(map[ast.Node]varSlot),
		strPool: make(map[string]*ir.Global),
		funcs:   make(map[*ast.FuncDecl]*ir.Func),
	}
	// Declare IR functions first so calls can reference them. info.Funcs
	// is a map; iterate in declaration order so the module's function
	// order — and everything keyed off it downstream (DOALL kernel
	// numbering, trace and profile names, baselines) — is deterministic
	// from compile to compile.
	decls := make([]*ast.FuncDecl, 0, len(info.Funcs))
	for _, fd := range info.Funcs {
		decls = append(decls, fd)
	}
	sort.Slice(decls, func(i, j int) bool {
		pi, pj := decls[i].DeclPos, decls[j].DeclPos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Col != pj.Col {
			return pi.Col < pj.Col
		}
		return decls[i].Name < decls[j].Name
	})
	for _, fd := range decls {
		f := &ir.Func{Name: fd.Name, Kernel: fd.Kernel}
		res := fd.Result
		f.HasResult = !res.IsVoid()
		f.ResultFloat = res.IsFloat()
		for i, p := range fd.Params {
			pt := p.Type
			f.Params = append(f.Params, &ir.Param{
				Fn: f, Index: i, Name: paramName(p.Name, i), Float: pt.Decay().IsFloat(),
			})
		}
		b.m.AddFunc(f)
		b.funcs[fd] = f
	}
	// Globals.
	for _, g := range info.Globals {
		if err := b.buildGlobal(g); err != nil {
			return nil, err
		}
	}
	// Function bodies.
	for _, fd := range decls {
		if fd.Body == nil {
			return nil, fmt.Errorf("%s: function %s has no body", fd.Pos(), fd.Name)
		}
		if err := b.buildFunc(fd); err != nil {
			return nil, err
		}
	}
	b.finishInit()
	b.m.Renumber()
	if err := b.m.Verify(); err != nil {
		return nil, fmt.Errorf("irbuild produced invalid IR: %w", err)
	}
	return b.m, nil
}

func paramName(name string, i int) string {
	if name == "" {
		return fmt.Sprintf("arg%d", i)
	}
	return name
}

type varSlot struct {
	val ir.Value    // alloca instruction or GlobalRef (address of the slot)
	typ *types.Type // declared type
}

type builder struct {
	info    *sema.Info
	m       *ir.Module
	vars    map[ast.Node]varSlot
	strPool map[string]*ir.Global
	funcs   map[*ast.FuncDecl]*ir.Func

	fn  *ir.Func
	cur *ir.Block

	breaks    []*ir.Block
	continues []*ir.Block

	initFn  *ir.Func
	initCur *ir.Block

	strCount int
	// line is the source line of the statement or expression being
	// lowered; emit stamps it onto every instruction so the profiler can
	// charge simulated cycles back to mini-C source lines.
	line int32
	err  error
}

func (b *builder) errorf(pos token.Pos, format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

// emit appends an instruction to the current block, stamping it with the
// source line currently being lowered.
func (b *builder) emit(in *ir.Instr) *ir.Instr {
	if in.Line == 0 {
		in.Line = b.line
	}
	return b.cur.Append(in)
}

// setLine records the source line of the node being lowered.
func (b *builder) setLine(pos token.Pos) {
	if pos.IsValid() {
		b.line = int32(pos.Line)
	}
}

func (b *builder) emitOp(op ir.Op, float bool, args ...ir.Value) *ir.Instr {
	return b.emit(&ir.Instr{Op: op, Float: float, Args: args})
}

func (b *builder) load(addr ir.Value, t *types.Type) *ir.Instr {
	return b.emit(&ir.Instr{Op: ir.OpLoad, Args: []ir.Value{addr}, Size: accessSize(t), Float: t.IsFloat()})
}

func (b *builder) store(addr, v ir.Value, t *types.Type) {
	b.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{addr, v}, Size: accessSize(t), Float: t.IsFloat()})
}

func accessSize(t *types.Type) int64 {
	if t.Kind() == types.Char {
		return 1
	}
	return 8
}

func (b *builder) br(target *ir.Block) {
	if b.cur.Terminator() == nil {
		b.emit(&ir.Instr{Op: ir.OpBr, Targets: []*ir.Block{target}})
	}
}

func (b *builder) condbr(cond ir.Value, then, els *ir.Block) {
	b.emit(&ir.Instr{Op: ir.OpCondBr, Args: []ir.Value{cond}, Targets: []*ir.Block{then, els}})
}

// stringGlobal interns a NUL-terminated string literal as a read-only
// global allocation unit and returns a reference to it.
func (b *builder) stringGlobal(s string) *ir.Global {
	if g, ok := b.strPool[s]; ok {
		return g
	}
	data := append([]byte(s), 0)
	g := &ir.Global{
		Name:     fmt.Sprintf(".str%d", b.strCount),
		Size:     int64(len(data)),
		Init:     data,
		ReadOnly: true,
	}
	b.strCount++
	b.m.AddGlobal(g)
	b.strPool[s] = g
	return g
}

// initBlock returns the current block of the __cgcm_init function,
// creating the function on first use.
func (b *builder) initBlock() *ir.Block {
	if b.initFn == nil {
		b.initFn = &ir.Func{Name: "__cgcm_init"}
		b.initCur = b.initFn.NewBlock("entry")
	}
	return b.initCur
}

func (b *builder) finishInit() {
	if b.initFn != nil {
		b.initCur.Append(&ir.Instr{Op: ir.OpRet})
		b.m.AddFunc(b.initFn)
	}
}

// --- Globals ---

func (b *builder) buildGlobal(d *ast.VarDecl) error {
	t := d.Type
	g := &ir.Global{
		Name:     d.Name,
		Size:     t.Size(),
		ReadOnly: d.IsConst,
		Float:    elemType(&t).IsFloat(),
	}
	b.m.AddGlobal(g)
	b.vars[d] = varSlot{val: &ir.GlobalRef{Global: g}, typ: &t}

	// Try a pure compile-time byte image first.
	if img, ok := b.constImage(d, &t); ok {
		g.Init = img
		return b.err
	}
	// Otherwise emit initialization code into __cgcm_init.
	b.cur = b.initBlock()
	b.fn = b.initFn
	base := &ir.GlobalRef{Global: g}
	if d.Init != nil {
		v := b.exprConv(d.Init, &t)
		b.store(base, v, &t)
	}
	elem := t.Elem()
	for i, e := range d.InitList {
		addr := b.emitOp(ir.OpAdd, false, base, ir.IntConst(int64(i)*elem.Size()))
		v := b.exprConv(e, elem)
		b.store(addr, v, elem)
	}
	b.initCur = b.cur
	return b.err
}

func elemType(t *types.Type) *types.Type {
	for t.IsArray() {
		t = t.Elem()
	}
	return t
}

// constImage tries to evaluate the initializer to a static byte image.
func (b *builder) constImage(d *ast.VarDecl, t *types.Type) ([]byte, bool) {
	if d.Init == nil && len(d.InitList) == 0 {
		return nil, true // zero initialized
	}
	img := make([]byte, t.Size())
	put := func(off int64, v uint64, sz int64) {
		if sz == 1 {
			img[off] = byte(v)
			return
		}
		binary.LittleEndian.PutUint64(img[off:], v)
	}
	if d.Init != nil {
		bits, isf, ok := constEval(d.Init)
		if !ok {
			return nil, false
		}
		put(0, convertBits(bits, isf, t), accessSize(t))
		return img, true
	}
	elem := t.Elem()
	for i, e := range d.InitList {
		bits, isf, ok := constEval(e)
		if !ok {
			return nil, false
		}
		put(int64(i)*elem.Size(), convertBits(bits, isf, elem), accessSize(elem))
	}
	return img, true
}

// convertBits converts a constant between int and float representations to
// match the destination type.
func convertBits(bits uint64, isFloat bool, to *types.Type) uint64 {
	if to.IsFloat() && !isFloat {
		return ir.F2B(float64(int64(bits)))
	}
	if !to.IsFloat() && isFloat {
		return uint64(int64(ir.B2F(bits)))
	}
	return bits
}

// constEval evaluates a compile-time constant expression to 64-bit value
// bits plus a float flag.
func constEval(e ast.Expr) (bits uint64, isFloat, ok bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return uint64(e.Value), false, true
	case *ast.FloatLit:
		return ir.F2B(e.Value), true, true
	case *ast.UnaryExpr:
		xb, xf, xok := constEval(e.X)
		if !xok {
			return 0, false, false
		}
		switch e.Op {
		case token.Minus:
			if xf {
				return ir.F2B(-ir.B2F(xb)), true, true
			}
			return uint64(-int64(xb)), false, true
		case token.Tilde:
			return ^xb, false, true
		case token.Not:
			if xb == 0 {
				return 1, false, true
			}
			return 0, false, true
		}
		return 0, false, false
	case *ast.BinaryExpr:
		xb, xf, xok := constEval(e.X)
		yb, yf, yok := constEval(e.Y)
		if !xok || !yok {
			return 0, false, false
		}
		if xf || yf {
			x, y := toF(xb, xf), toF(yb, yf)
			switch e.Op {
			case token.Plus:
				return ir.F2B(x + y), true, true
			case token.Minus:
				return ir.F2B(x - y), true, true
			case token.Star:
				return ir.F2B(x * y), true, true
			case token.Slash:
				return ir.F2B(x / y), true, true
			}
			return 0, false, false
		}
		x, y := int64(xb), int64(yb)
		switch e.Op {
		case token.Plus:
			return uint64(x + y), false, true
		case token.Minus:
			return uint64(x - y), false, true
		case token.Star:
			return uint64(x * y), false, true
		case token.Slash:
			if y == 0 {
				return 0, false, false
			}
			return uint64(x / y), false, true
		case token.Percent:
			if y == 0 {
				return 0, false, false
			}
			return uint64(x % y), false, true
		case token.Shl:
			return uint64(x << uint(y)), false, true
		case token.Shr:
			return uint64(x >> uint(y)), false, true
		case token.Amp:
			return uint64(x & y), false, true
		case token.Pipe:
			return uint64(x | y), false, true
		case token.Caret:
			return uint64(x ^ y), false, true
		}
		return 0, false, false
	case *ast.CastExpr:
		xb, xf, xok := constEval(e.X)
		if !xok {
			return 0, false, false
		}
		to := e.To
		return convertBits(xb, xf, &to), to.IsFloat(), true
	case *ast.SizeofExpr:
		if e.OfExpr != nil {
			t := e.OfExpr.Type()
			return uint64(t.Size()), false, true
		}
		return uint64(e.Of.Size()), false, true
	}
	return 0, false, false
}

func toF(bits uint64, isFloat bool) float64 {
	if isFloat {
		return ir.B2F(bits)
	}
	return float64(int64(bits))
}

// --- Functions ---

func (b *builder) buildFunc(fd *ast.FuncDecl) error {
	f := b.funcs[fd]
	b.fn = f
	b.cur = f.NewBlock("entry")
	b.breaks, b.continues = nil, nil

	// Spill parameters into stack slots so they are addressable and
	// mutable like any C parameter.
	for i, p := range fd.Params {
		pt := p.Type
		dt := pt.Decay()
		slot := b.emit(&ir.Instr{Op: ir.OpAlloca, Size: dt.Size(), Comment: "param " + f.Params[i].Name})
		b.store(slot, f.Params[i], dt)
		b.vars[p] = varSlot{val: slot, typ: dt}
	}
	b.stmt(fd.Body)
	// Implicit return.
	if b.cur.Terminator() == nil {
		if f.HasResult {
			zero := ir.Value(ir.IntConst(0))
			if f.ResultFloat {
				zero = ir.FloatConst(0)
			}
			b.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{zero}})
		} else {
			b.emit(&ir.Instr{Op: ir.OpRet})
		}
	}
	return b.err
}

func (b *builder) stmt(s ast.Stmt) {
	if b.err != nil {
		return
	}
	b.setLine(s.Pos())
	switch s := s.(type) {
	case *ast.DeclStmt:
		b.declStmt(s.Decl)
	case *ast.ExprStmt:
		b.expr(s.X)
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.WhileStmt:
		b.whileStmt(s)
	case *ast.ReturnStmt:
		if s.Value != nil {
			res := b.fnResultType()
			v := b.exprConv(s.Value, res)
			b.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{v}})
		} else {
			b.emit(&ir.Instr{Op: ir.OpRet})
		}
		b.cur = b.fn.NewBlock("dead")
	case *ast.BreakStmt:
		if len(b.breaks) == 0 {
			b.errorf(s.Pos(), "break outside loop")
			return
		}
		b.br(b.breaks[len(b.breaks)-1])
		b.cur = b.fn.NewBlock("dead")
	case *ast.ContinueStmt:
		if len(b.continues) == 0 {
			b.errorf(s.Pos(), "continue outside loop")
			return
		}
		b.br(b.continues[len(b.continues)-1])
		b.cur = b.fn.NewBlock("dead")
	case *ast.LaunchStmt:
		b.launch(s)
	default:
		b.errorf(s.Pos(), "unsupported statement %T", s)
	}
}

func (b *builder) fnResultType() *types.Type {
	if b.fn.ResultFloat {
		return types.FloatType
	}
	return types.IntType
}

func (b *builder) declStmt(d *ast.VarDecl) {
	t := d.Type
	slot := b.emit(&ir.Instr{Op: ir.OpAlloca, Size: t.Size(), Comment: "local " + d.Name})
	b.vars[d] = varSlot{val: slot, typ: &t}
	if d.Init != nil {
		v := b.exprConv(d.Init, &t)
		b.store(slot, v, &t)
	}
	if len(d.InitList) > 0 {
		elem := t.Elem()
		for i, e := range d.InitList {
			addr := b.emitOp(ir.OpAdd, false, slot, ir.IntConst(int64(i)*elem.Size()))
			v := b.exprConv(e, elem)
			b.store(addr, v, elem)
		}
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	cond := b.condValue(s.Cond)
	then := b.fn.NewBlock("then")
	done := b.fn.NewBlock("endif")
	els := done
	if s.Else != nil {
		els = b.fn.NewBlock("else")
	}
	b.condbr(cond, then, els)
	b.cur = then
	b.stmt(s.Then)
	b.br(done)
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		b.br(done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.fn.NewBlock("forhead")
	body := b.fn.NewBlock("forbody")
	post := b.fn.NewBlock("forpost")
	exit := b.fn.NewBlock("forexit")
	b.br(head)
	b.cur = head
	if s.Cond != nil {
		cond := b.condValue(s.Cond)
		b.condbr(cond, body, exit)
	} else {
		b.br(body)
	}
	b.breaks = append(b.breaks, exit)
	b.continues = append(b.continues, post)
	b.cur = body
	b.stmt(s.Body)
	b.br(post)
	b.cur = post
	if s.Post != nil {
		b.expr(s.Post)
	}
	b.br(head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = exit
}

func (b *builder) whileStmt(s *ast.WhileStmt) {
	head := b.fn.NewBlock("whilehead")
	body := b.fn.NewBlock("whilebody")
	exit := b.fn.NewBlock("whileexit")
	if s.DoWhile {
		b.br(body)
	} else {
		b.br(head)
	}
	b.cur = head
	cond := b.condValue(s.Cond)
	b.condbr(cond, body, exit)
	b.breaks = append(b.breaks, exit)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmt(s.Body)
	b.br(head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = exit
}

func (b *builder) launch(s *ast.LaunchStmt) {
	kfd, ok := b.info.Funcs[s.Kernel]
	if !ok {
		b.errorf(s.Pos(), "launch of unknown kernel %s", s.Kernel)
		return
	}
	kf := b.funcs[kfd]
	args := []ir.Value{
		b.exprConv(s.Grid, types.IntType),
		b.exprConv(s.Block, types.IntType),
	}
	for i, a := range s.Args {
		pt := kfd.Params[i].Type
		args = append(args, b.exprConv(a, pt.Decay()))
	}
	b.emit(&ir.Instr{Op: ir.OpLaunch, Callee: kf, Args: args})
}

// condValue lowers a boolean context expression to an int 0/1 value.
func (b *builder) condValue(e ast.Expr) ir.Value {
	v := b.expr(e)
	t := e.Type()
	if t.IsFloat() {
		return b.emitOp(ir.OpNe, true, v, ir.FloatConst(0))
	}
	// Comparisons already produce 0/1, but normalizing is harmless and
	// keeps CondBr semantics uniform.
	return v
}

// exprConv evaluates e and converts the value to type to.
func (b *builder) exprConv(e ast.Expr, to *types.Type) ir.Value {
	v := b.expr(e)
	t := e.Type()
	return b.convert(v, t.Decay(), to.Decay())
}

func (b *builder) convert(v ir.Value, from, to *types.Type) ir.Value {
	if from.IsFloat() == to.IsFloat() {
		if to.Kind() == types.Char && from.Kind() != types.Char {
			return b.emitOp(ir.OpAnd, false, v, ir.IntConst(0xff))
		}
		return v
	}
	if to.IsFloat() {
		return b.emitOp(ir.OpIToF, true, v)
	}
	r := ir.Value(b.emitOp(ir.OpFToI, false, v))
	if to.Kind() == types.Char {
		r = b.emitOp(ir.OpAnd, false, r, ir.IntConst(0xff))
	}
	return r
}

// addr lowers an lvalue expression to the address of its storage.
func (b *builder) addr(e ast.Expr) ir.Value {
	switch e := e.(type) {
	case *ast.Ident:
		sym := b.info.Uses[e]
		if sym == nil {
			b.errorf(e.Pos(), "unresolved identifier %s", e.Name)
			return ir.IntConst(0)
		}
		slot, ok := b.vars[sym.Decl]
		if !ok {
			b.errorf(e.Pos(), "no storage for %s", e.Name)
			return ir.IntConst(0)
		}
		return slot.val
	case *ast.IndexExpr:
		xt := e.X.Type()
		var base ir.Value
		if xt.IsArray() {
			base = b.addr(e.X)
		} else {
			base = b.expr(e.X)
		}
		elem := xt.Decay().Elem()
		idx := b.exprConv(e.Index, types.IntType)
		off := b.emitOp(ir.OpMul, false, idx, ir.IntConst(elem.Size()))
		return b.emitOp(ir.OpAdd, false, base, off)
	case *ast.MemberExpr:
		var base ir.Value
		var st *types.Type
		if e.Arrow {
			base = b.expr(e.X)
			st = e.X.Type().Decay().Elem()
		} else {
			base = b.addr(e.X)
			st = e.X.Type()
		}
		f, ok := st.FieldByName(e.Name)
		if !ok {
			b.errorf(e.Pos(), "no field %s", e.Name)
			return ir.IntConst(0)
		}
		// The field-offset add is tagged: applicability analyses use the
		// tag to recognize array-of-struct access patterns.
		return b.emit(&ir.Instr{
			Op: ir.OpAdd, Args: []ir.Value{base, ir.IntConst(f.Offset)},
			Comment: "field " + st.StructName() + "." + e.Name,
		})
	case *ast.UnaryExpr:
		if e.Op == token.Star {
			return b.expr(e.X)
		}
	}
	b.errorf(e.Pos(), "expression is not an lvalue")
	return ir.IntConst(0)
}

func (b *builder) expr(e ast.Expr) ir.Value {
	if b.err != nil {
		return ir.IntConst(0)
	}
	b.setLine(e.Pos())
	switch e := e.(type) {
	case *ast.IntLit:
		return ir.IntConst(e.Value)
	case *ast.FloatLit:
		return ir.FloatConst(e.Value)
	case *ast.StringLit:
		return &ir.GlobalRef{Global: b.stringGlobal(e.Value)}
	case *ast.Ident:
		t := e.Type()
		if t.IsArray() || t.IsStruct() {
			return b.addr(e) // aggregates denote their address
		}
		a := b.addr(e)
		return b.load(a, t)
	case *ast.IndexExpr:
		t := e.Type()
		a := b.addr(e)
		if t.IsArray() || t.IsStruct() {
			return a // aggregates denote their address
		}
		return b.load(a, t)
	case *ast.MemberExpr:
		t := e.Type()
		a := b.addr(e)
		if t.IsArray() || t.IsStruct() {
			return a
		}
		return b.load(a, t)
	case *ast.UnaryExpr:
		return b.unary(e)
	case *ast.BinaryExpr:
		return b.binary(e)
	case *ast.AssignExpr:
		return b.assign(e)
	case *ast.IncDecExpr:
		return b.incdec(e)
	case *ast.CastExpr:
		to := e.To
		return b.exprConv(e.X, &to)
	case *ast.CondExpr:
		return b.condExpr(e)
	case *ast.CallExpr:
		return b.call(e)
	case *ast.SizeofExpr:
		if e.OfExpr != nil {
			t := e.OfExpr.Type()
			return ir.IntConst(t.Size())
		}
		return ir.IntConst(e.Of.Size())
	}
	b.errorf(e.Pos(), "unsupported expression %T", e)
	return ir.IntConst(0)
}

func (b *builder) unary(e *ast.UnaryExpr) ir.Value {
	switch e.Op {
	case token.Minus:
		t := e.Type()
		v := b.expr(e.X)
		if t.IsFloat() {
			return b.emitOp(ir.OpSub, true, ir.FloatConst(0), v)
		}
		return b.emitOp(ir.OpSub, false, ir.IntConst(0), v)
	case token.Not:
		v := b.condValue(e.X)
		return b.emitOp(ir.OpEq, false, v, ir.IntConst(0))
	case token.Tilde:
		v := b.expr(e.X)
		return b.emitOp(ir.OpXor, false, v, ir.IntConst(-1))
	case token.Star:
		t := e.Type()
		a := b.expr(e.X)
		if t.IsArray() || t.IsStruct() {
			return a
		}
		return b.load(a, t)
	case token.Amp:
		return b.addr(e.X)
	}
	b.errorf(e.Pos(), "unsupported unary operator %s", e.Op)
	return ir.IntConst(0)
}

func (b *builder) binary(e *ast.BinaryExpr) ir.Value {
	switch e.Op {
	case token.AmpAmp, token.PipePip:
		return b.shortCircuit(e)
	case token.Comma:
		b.expr(e.X)
		return b.expr(e.Y)
	}
	xt, yt := e.X.Type().Decay(), e.Y.Type().Decay()
	switch e.Op {
	case token.Eq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge:
		common := types.Common(xt, yt)
		x := b.exprConv(e.X, common)
		y := b.exprConv(e.Y, common)
		var op ir.Op
		switch e.Op {
		case token.Eq:
			op = ir.OpEq
		case token.Ne:
			op = ir.OpNe
		case token.Lt:
			op = ir.OpLt
		case token.Le:
			op = ir.OpLe
		case token.Gt:
			op = ir.OpGt
		case token.Ge:
			op = ir.OpGe
		}
		return b.emitOp(op, common.IsFloat(), x, y)
	}
	// Pointer arithmetic.
	if e.Op == token.Plus || e.Op == token.Minus {
		switch {
		case xt.IsPointer() && yt.IsInteger():
			p := b.expr(e.X)
			i := b.exprConv(e.Y, types.IntType)
			off := b.emitOp(ir.OpMul, false, i, ir.IntConst(xt.Elem().Size()))
			if e.Op == token.Plus {
				return b.emitOp(ir.OpAdd, false, p, off)
			}
			return b.emitOp(ir.OpSub, false, p, off)
		case xt.IsInteger() && yt.IsPointer() && e.Op == token.Plus:
			i := b.exprConv(e.X, types.IntType)
			p := b.expr(e.Y)
			off := b.emitOp(ir.OpMul, false, i, ir.IntConst(yt.Elem().Size()))
			return b.emitOp(ir.OpAdd, false, p, off)
		case xt.IsPointer() && yt.IsPointer() && e.Op == token.Minus:
			x := b.expr(e.X)
			y := b.expr(e.Y)
			d := b.emitOp(ir.OpSub, false, x, y)
			return b.emitOp(ir.OpDiv, false, d, ir.IntConst(xt.Elem().Size()))
		}
	}
	common := types.Common(xt, yt)
	x := b.exprConv(e.X, common)
	y := b.exprConv(e.Y, common)
	var op ir.Op
	switch e.Op {
	case token.Plus:
		op = ir.OpAdd
	case token.Minus:
		op = ir.OpSub
	case token.Star:
		op = ir.OpMul
	case token.Slash:
		op = ir.OpDiv
	case token.Percent:
		op = ir.OpRem
	case token.Amp:
		op = ir.OpAnd
	case token.Pipe:
		op = ir.OpOr
	case token.Caret:
		op = ir.OpXor
	case token.Shl:
		op = ir.OpShl
	case token.Shr:
		op = ir.OpShr
	default:
		b.errorf(e.Pos(), "unsupported binary operator %s", e.Op)
		return ir.IntConst(0)
	}
	return b.emitOp(op, common.IsFloat(), x, y)
}

// shortCircuit lowers && and || with a temporary stack slot.
func (b *builder) shortCircuit(e *ast.BinaryExpr) ir.Value {
	slot := b.emit(&ir.Instr{Op: ir.OpAlloca, Size: 8, Comment: "shortcircuit"})
	evalY := b.fn.NewBlock("sc_rhs")
	done := b.fn.NewBlock("sc_done")
	x := b.condValue(e.X)
	xBool := b.emitOp(ir.OpNe, false, x, ir.IntConst(0))
	b.store(slot, xBool, types.IntType)
	if e.Op == token.AmpAmp {
		b.condbr(xBool, evalY, done)
	} else {
		b.condbr(xBool, done, evalY)
	}
	b.cur = evalY
	y := b.condValue(e.Y)
	yBool := b.emitOp(ir.OpNe, false, y, ir.IntConst(0))
	b.store(slot, yBool, types.IntType)
	b.br(done)
	b.cur = done
	return b.load(slot, types.IntType)
}

func (b *builder) condExpr(e *ast.CondExpr) ir.Value {
	t := e.Type()
	dt := t.Decay()
	slot := b.emit(&ir.Instr{Op: ir.OpAlloca, Size: 8, Comment: "condexpr"})
	then := b.fn.NewBlock("cthen")
	els := b.fn.NewBlock("celse")
	done := b.fn.NewBlock("cdone")
	cond := b.condValue(e.Cond)
	b.condbr(cond, then, els)
	b.cur = then
	tv := b.exprConv(e.Then, dt)
	b.store(slot, tv, dt)
	b.br(done)
	b.cur = els
	ev := b.exprConv(e.Else, dt)
	b.store(slot, ev, dt)
	b.br(done)
	b.cur = done
	return b.load(slot, dt)
}

func (b *builder) assign(e *ast.AssignExpr) ir.Value {
	lt := e.Lhs.Type()
	dlt := lt.Decay()
	a := b.addr(e.Lhs)
	if e.Op == token.Assign {
		v := b.exprConv(e.Rhs, dlt)
		b.store(a, v, dlt)
		return v
	}
	old := b.load(a, dlt)
	var op ir.Op
	switch e.Op {
	case token.PlusAssign:
		op = ir.OpAdd
	case token.MinusAssign:
		op = ir.OpSub
	case token.StarAssign:
		op = ir.OpMul
	case token.SlashAssign:
		op = ir.OpDiv
	case token.PercentAssign:
		op = ir.OpRem
	default:
		b.errorf(e.Pos(), "unsupported compound assignment %s", e.Op)
		return ir.IntConst(0)
	}
	var v ir.Value
	if dlt.IsPointer() {
		i := b.exprConv(e.Rhs, types.IntType)
		off := b.emitOp(ir.OpMul, false, i, ir.IntConst(dlt.Elem().Size()))
		v = b.emitOp(op, false, old, off)
	} else {
		rhs := b.exprConv(e.Rhs, dlt)
		v = b.emitOp(op, dlt.IsFloat(), old, rhs)
	}
	b.store(a, v, dlt)
	return v
}

func (b *builder) incdec(e *ast.IncDecExpr) ir.Value {
	t := e.X.Type()
	dt := t.Decay()
	a := b.addr(e.X)
	old := b.load(a, dt)
	delta := ir.Value(ir.IntConst(1))
	if dt.IsPointer() {
		delta = ir.IntConst(dt.Elem().Size())
	} else if dt.IsFloat() {
		delta = ir.FloatConst(1)
	}
	op := ir.OpAdd
	if e.Op == token.MinusMinus {
		op = ir.OpSub
	}
	v := b.emitOp(op, dt.IsFloat(), old, delta)
	b.store(a, v, dt)
	if e.Prefix {
		return v
	}
	return old
}

func (b *builder) call(e *ast.CallExpr) ir.Value {
	if bi, ok := sema.Builtins[e.Name]; ok {
		var args []ir.Value
		for i, a := range e.Args {
			want := types.IntType
			if i < len(bi.Params) {
				want = bi.Params[i]
			}
			args = append(args, b.exprConv(a, want))
		}
		return b.emit(&ir.Instr{
			Op:    ir.OpIntrinsic,
			Name:  e.Name,
			Args:  args,
			Float: bi.Result.IsFloat(),
		})
	}
	fd, ok := b.info.Funcs[e.Name]
	if !ok {
		b.errorf(e.Pos(), "call of unknown function %s", e.Name)
		return ir.IntConst(0)
	}
	f := b.funcs[fd]
	var args []ir.Value
	for i, a := range e.Args {
		pt := fd.Params[i].Type
		args = append(args, b.exprConv(a, pt.Decay()))
	}
	return b.emit(&ir.Instr{Op: ir.OpCall, Callee: f, Args: args, Float: f.ResultFloat})
}
