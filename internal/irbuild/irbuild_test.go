package irbuild_test

import (
	"testing"

	"cgcm/internal/ir"
	"cgcm/internal/irbuild"
	"cgcm/internal/minic/parser"
	"cgcm/internal/minic/sema"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, perrs := parser.Parse("t.c", src)
	if len(perrs) > 0 {
		t.Fatalf("parse: %v", perrs)
	}
	info, serrs := sema.Check(f)
	if len(serrs) > 0 {
		t.Fatalf("sema: %v", serrs)
	}
	m, err := irbuild.Build(info)
	if err != nil {
		t.Fatalf("irbuild: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestGlobalImages(t *testing.T) {
	m := build(t, `
int a = 7;
float b = 2.5;
char c = 'x';
int arr[3] = {1, 2, 3};
float farr[2] = {1.5, -2.0};
int computed = 3 * 4 + (1 << 4);
int zero[8];
int main() { return 0; }`)
	g := func(name string) *ir.Global {
		gl := m.GlobalByName(name)
		if gl == nil {
			t.Fatalf("global %s missing", name)
		}
		return gl
	}
	if got := g("a"); got.Size != 8 || le64(got.Init) != 7 {
		t.Errorf("a image wrong: %v", got.Init)
	}
	if got := g("b"); ir.B2F(le64(got.Init)) != 2.5 {
		t.Errorf("b image wrong")
	}
	if got := g("c"); got.Size != 1 || got.Init[0] != 'x' {
		t.Errorf("c image wrong: %v", got.Init)
	}
	if got := g("arr"); got.Size != 24 || le64(got.Init[8:]) != 2 {
		t.Errorf("arr image wrong: %v", got.Init)
	}
	if got := g("computed"); le64(got.Init) != 28 {
		t.Errorf("computed = %d, want 28", le64(got.Init))
	}
	if got := g("zero"); got.Init != nil {
		t.Errorf("zero-initialized global has an image")
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestStringsBecomeReadOnlyGlobals(t *testing.T) {
	m := build(t, `
int main() {
	char *s = "abc";
	char *again = "abc";
	char *other = "xyz";
	return (int)strlen(s) + (int)strlen(again) + (int)strlen(other);
}`)
	strGlobals := 0
	for _, g := range m.Globals {
		if g.ReadOnly && g.Size == 4 {
			strGlobals++
			if string(g.Init[:3]) != "abc" && string(g.Init[:3]) != "xyz" {
				t.Errorf("string image %q", g.Init)
			}
		}
	}
	if strGlobals != 2 {
		t.Errorf("interned string globals = %d, want 2 (dedup)", strGlobals)
	}
}

func TestPointerInitializersUseInitFunc(t *testing.T) {
	m := build(t, `
char *names[2] = {"a", "b"};
int main() { return 0; }`)
	initFn := m.Func("__cgcm_init")
	if initFn == nil {
		t.Fatal("no __cgcm_init despite pointer initializers")
	}
	stores := 0
	initFn.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			stores++
		}
	})
	if stores != 2 {
		t.Errorf("init stores = %d, want 2", stores)
	}
	// Purely numeric modules get no init function.
	m2 := build(t, `int x = 4; int main() { return 0; }`)
	if m2.Func("__cgcm_init") != nil {
		t.Error("numeric-only module has an init function")
	}
}

func TestPointerArithmeticScaling(t *testing.T) {
	m := build(t, `
int main() {
	float *p = (float*)malloc(80);
	float *q = p + 3;
	long d = (long)(q - p);
	free(p);
	return (int)d;
}`)
	// p + 3 must scale by 8: find a mul by 8 feeding an add.
	found := false
	m.Func("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMul {
			if c, ok := in.Args[1].(*ir.Const); ok && c.Int() == 8 {
				found = true
			}
		}
	})
	if !found {
		t.Error("pointer arithmetic not scaled by element size")
	}
}

func TestCharAccessSize(t *testing.T) {
	m := build(t, `
int main() {
	char buf[4];
	buf[1] = 'y';
	return (int)buf[1];
}`)
	var sawByteStore, sawByteLoad bool
	m.Func("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Size == 1 {
			sawByteStore = true
		}
		if in.Op == ir.OpLoad && in.Size == 1 {
			sawByteLoad = true
		}
	})
	if !sawByteStore || !sawByteLoad {
		t.Error("char accesses are not byte-sized")
	}
}

func TestShortCircuitBlocks(t *testing.T) {
	m := build(t, `
int f() { return 1; }
int main() {
	int a = 1;
	if (a && f()) return 1;
	return 0;
}`)
	// && must branch around the call to f.
	blocks := len(m.Func("main").Blocks)
	if blocks < 4 {
		t.Errorf("short-circuit produced only %d blocks", blocks)
	}
}

func TestLaunchLowering(t *testing.T) {
	m := build(t, `
__global__ void k(float *v, int n) {
	int i = tid();
	if (i < n) v[i] = 0.0;
}
int main() {
	float buf[8];
	k<<<2, 4>>>(buf, 8);
	return 0;
}`)
	var launch *ir.Instr
	m.Func("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLaunch {
			launch = in
		}
	})
	if launch == nil {
		t.Fatal("no launch instruction")
	}
	if launch.Callee.Name != "k" || !launch.Callee.Kernel {
		t.Error("launch callee wrong")
	}
	if g := launch.Args[0].(*ir.Const); g.Int() != 2 {
		t.Errorf("grid = %d", g.Int())
	}
	if len(launch.Args) != 4 {
		t.Errorf("launch args = %d, want grid+block+2", len(launch.Args))
	}
}

func TestFloatIntConversionInserted(t *testing.T) {
	m := build(t, `
int main() {
	float f = 3;    // int literal to float slot
	int i = (int)(f * 2.0);
	return i;
}`)
	var itof, ftoi bool
	m.Func("main").Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpIToF:
			itof = true
		case ir.OpFToI:
			ftoi = true
		}
	})
	if !itof || !ftoi {
		t.Errorf("conversions missing: itof=%v ftoi=%v", itof, ftoi)
	}
}

// TestFuncOrderDeterministic pins the module's function order to source
// declaration order. sema hands irbuild a map of functions; without the
// position sort, module order — and everything keyed off it downstream
// (DOALL kernel numbering, trace span names, profile keys) — varied
// from compile to compile of the same source.
func TestFuncOrderDeterministic(t *testing.T) {
	src := `
int helper_c(int x) { return x + 3; }
int helper_a(int x) { return x + 1; }
int helper_b(int x) { return x + 2; }
int main() { return helper_a(helper_b(helper_c(0))); }`
	want := []string{"helper_c", "helper_a", "helper_b", "main"}
	for iter := 0; iter < 50; iter++ {
		m := build(t, src)
		if len(m.Funcs) != len(want) {
			t.Fatalf("iter %d: %d funcs, want %d", iter, len(m.Funcs), len(want))
		}
		for i, f := range m.Funcs {
			if f.Name != want[i] {
				t.Fatalf("iter %d: func %d is %q, want %q (declaration order)", iter, i, f.Name, want[i])
			}
		}
	}
}
