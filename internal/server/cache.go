// Compilation cache: compile once, run many. Cache keys combine the
// source hash with the canonical Options fingerprint (the same
// fingerprint run records store), so two requests share a compiled
// Program exactly when a stored record would call their runs
// comparable. Lookup is singleflight: a thundering herd of identical
// sources blocks on one compilation instead of stampeding the
// compiler. Safe because core.Program is immutable after Compile and
// explicitly supports concurrent Run.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"cgcm/internal/cli"
	"cgcm/internal/core"
)

// cacheKey derives the cache key for one request: sha256 over the
// source hash plus the canonical fingerprint rendering. Workers is
// zeroed first — it cannot change simulated results (the fingerprint
// itself documents it as host-dependent), so requests differing only in
// worker count share one compilation.
func cacheKey(program, source string, opts core.Options) string {
	fp := cli.FingerprintOptions(opts)
	fp.Workers = 0
	fpJSON, err := json.Marshal(fp)
	if err != nil {
		// OptionsFP is plain data; Marshal cannot fail. Keep the key
		// total anyway.
		fpJSON = []byte(fmt.Sprintf("%+v", fp))
	}
	h := sha256.New()
	h.Write([]byte(program))
	h.Write([]byte{0})
	h.Write([]byte(source))
	h.Write([]byte{0})
	h.Write(fpJSON)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is one singleflight slot: done closes when the compile
// finishes, after which prog/err are immutable.
type cacheEntry struct {
	done chan struct{}
	prog *core.Program
	err  error
}

// compileCache is the singleflight compilation cache. Entries persist
// for the server's lifetime (compiled Programs are small relative to
// the simulated heaps their runs build, and the bench suite tops out at
// dozens of distinct sources); a capacity bound can slot into
// get() later without changing callers.
type compileCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
	dedups atomic.Int64
}

func newCompileCache() *compileCache {
	return &compileCache{entries: make(map[string]*cacheEntry)}
}

// get returns the cached Program for key, compiling it with compile()
// on the first request. Concurrent requests for one key wait on the
// single in-flight compilation (counted as dedups). The cached flag
// reports whether this caller got a previously finished compilation —
// the response's "cached" field.
//
// Failed compilations are cached too: a source that does not compile
// does not compile, and the herd should learn that once. ctx aborts
// only this caller's wait, never the shared compile.
func (c *compileCache) get(ctx context.Context, key string, compile func() (*core.Program, error)) (prog *core.Program, cached bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			c.hits.Add(1)
			return e.prog, true, e.err
		default:
		}
		c.dedups.Add(1)
		select {
		case <-e.done:
			return e.prog, false, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e = &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	e.prog, e.err = compile()
	close(e.done)
	return e.prog, false, e.err
}

// counters reports lifetime hit/miss/dedup totals.
func (c *compileCache) counters() (hits, misses, dedups int64) {
	return c.hits.Load(), c.misses.Load(), c.dedups.Load()
}
