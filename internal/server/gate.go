// The contention-invariant gate: the executable form of the service's
// headline guarantee. For every bench program and a set of option
// configurations (plain, the standard injected-fault schedule with a
// capacity-limited device, and a quota-governed tenant), it computes the
// expected response payload from a solo in-process run, then submits
// the whole matrix to a loaded server concurrently — twice, so both the
// cold and the warm compilation cache are exercised — and requires
// every payload byte-identical to its solo expectation. cgcmd -gate and
// `make servegate` run it; CI gates on it.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"cgcm/internal/bench"
	"cgcm/internal/core"
	"cgcm/internal/machine"
)

// gateConfig is one option set the matrix crosses with every program.
type gateConfig struct {
	name string
	opts RunOptions
	// quota, when non-zero, runs the config under a quota-governed
	// tenant (applied to a bounded program subset to keep gate cost
	// sane; quota semantics themselves are unit-tested).
	quota int64
}

// gateFaultSpec matches `make resilience`: the standard injected-fault
// schedule on a capacity-limited device.
const (
	gateFaultSpec = "seed=7,htod=0.2,dtoh=0.2,alloc=0.1"
	gateGPUMem    = 262144
	// gateQuota is generous enough that even all workers running the
	// tenant concurrently never trip it — the config exercises the
	// governor path, not denial nondeterminism.
	gateQuota = int64(1) << 30
	// gateQuotaProgs bounds the quota config to the first N programs.
	gateQuotaProgs = 4
)

func gateConfigs() []gateConfig {
	return []gateConfig{
		{name: "plain", opts: RunOptions{}},
		{name: "faults", opts: RunOptions{Faults: gateFaultSpec, GPUMem: gateGPUMem}},
		{name: "quota", opts: RunOptions{}, quota: gateQuota},
	}
}

// gateCase is one (program, config) cell of the matrix with its solo
// expectation.
type gateCase struct {
	prog    bench.Program
	cfg     gateConfig
	tenant  string
	req     *RunRequest
	payload []byte // solo expected payload
	output  string // solo expected raw output
}

// soloExpectation runs the case alone, through the same public
// compile+run API the server uses, and records its payload.
func (c *gateCase) soloExpectation() error {
	prog, err := core.CompileContext(context.Background(), c.prog.Name, c.prog.Source, c.req.CoreOptions())
	if err != nil {
		return fmt.Errorf("solo compile %s/%s: %w", c.prog.Name, c.cfg.name, err)
	}
	rc := core.RunConfig{}
	if c.cfg.quota > 0 {
		pool := machine.NewQuotaPool(0)
		pool.SetQuota(c.tenant, c.cfg.quota)
		rc.MemGovernor = pool.Governor(c.tenant)
	}
	rep, err := prog.RunWith(rc)
	if err != nil {
		return fmt.Errorf("solo run %s/%s: %w", c.prog.Name, c.cfg.name, err)
	}
	resp := newRunResponse(c.req, rep, false, 0)
	c.payload, err = resp.Payload()
	if err != nil {
		return fmt.Errorf("solo payload %s/%s: %w", c.prog.Name, c.cfg.name, err)
	}
	c.output = rep.Output
	return nil
}

// buildGateCases assembles the matrix. Tenants rotate so the scheduler
// actually interleaves competing queues.
func buildGateCases() ([]*gateCase, map[string]int64, error) {
	progs := bench.All()
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	quotas := make(map[string]int64)
	var cases []*gateCase
	for _, cfg := range gateConfigs() {
		for i, p := range progs {
			if cfg.quota > 0 && i >= gateQuotaProgs {
				break
			}
			tenant := tenants[i%len(tenants)]
			if cfg.quota > 0 {
				tenant = "quota-" + tenant
				quotas[tenant] = cfg.quota
			}
			body, err := json.Marshal(RunRequest{
				Tenant:  tenant,
				Program: p.Name,
				Source:  p.Source,
				Options: cfg.opts,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("gate: marshal %s/%s: %w", p.Name, cfg.name, err)
			}
			req, derr := DecodeRequest(body, 0)
			if derr != nil {
				return nil, nil, fmt.Errorf("gate: decode %s/%s: %v", p.Name, cfg.name, derr)
			}
			cases = append(cases, &gateCase{prog: p, cfg: cfg, tenant: tenant, req: req})
		}
	}
	return cases, quotas, nil
}

// RunGate executes the full gate and streams progress to log. It
// returns an error describing every violated invariant, nil when the
// matrix passes.
func RunGate(log io.Writer) error {
	if log == nil {
		log = io.Discard
	}
	cases, quotas, err := buildGateCases()
	if err != nil {
		return err
	}
	fmt.Fprintf(log, "servegate: %d cases (programs x {plain, faults, quota})\n", len(cases))

	// Solo expectations, computed before the server exists.
	for _, c := range cases {
		if err := c.soloExpectation(); err != nil {
			return fmt.Errorf("servegate: %w", err)
		}
	}
	fmt.Fprintf(log, "servegate: solo expectations computed\n")

	// One loaded server: queue sized to hold the entire matrix at once so
	// admission never sheds (shedding exactness is unit-tested; the gate
	// isolates the bit-identity invariant).
	srv, err := New(Config{
		Workers:       runtime.GOMAXPROCS(0),
		QueueCapacity: 2 * len(cases),
		TenantQuotas:  quotas,
		Weights:       map[string]int{"alpha": 3, "beta": 1},
	})
	if err != nil {
		return fmt.Errorf("servegate: %w", err)
	}
	defer srv.Shutdown(context.Background())

	var failures []string
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	// Two passes: cold cache (every case compiles), then warm (every
	// case must hit). Each pass submits the full matrix concurrently.
	for pass, wantCached := range []bool{false, true} {
		var wg sync.WaitGroup
		for _, c := range cases {
			wg.Add(1)
			go func(c *gateCase) {
				defer wg.Done()
				resp, serr, _ := srv.Submit(context.Background(), c.req)
				if serr != nil {
					fail("pass %d %s/%s: unexpected error: %v", pass, c.prog.Name, c.cfg.name, serr)
					return
				}
				// Only the warm pass pins cached: cold-pass cases whose key
				// collides (the quota config reuses plain options) may
				// legitimately hit a twin's fresh compilation.
				if wantCached && !resp.Cached {
					fail("pass %d %s/%s: cached=false on the warm pass", pass, c.prog.Name, c.cfg.name)
				}
				got, perr := resp.Payload()
				if perr != nil {
					fail("pass %d %s/%s: payload: %v", pass, c.prog.Name, c.cfg.name, perr)
					return
				}
				if string(got) != string(c.payload) {
					fail("pass %d %s/%s: payload differs under contention:\n  solo:   %s\n  server: %s",
						pass, c.prog.Name, c.cfg.name, c.payload, got)
				}
				if resp.Output != c.output {
					fail("pass %d %s/%s: output differs under contention", pass, c.prog.Name, c.cfg.name)
				}
			}(c)
		}
		wg.Wait()
		label := "cold"
		if wantCached {
			label = "warm"
		}
		fmt.Fprintf(log, "servegate: %s pass done (%d cases)\n", label, len(cases))
	}

	hits, misses, dedups := srv.CacheCounters()
	fmt.Fprintf(log, "servegate: cache hits=%d misses=%d dedups=%d\n", hits, misses, dedups)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(log, "servegate: FAIL %s\n", f)
		}
		return fmt.Errorf("servegate: %d invariant violations across %d cases", len(failures), 2*len(cases))
	}
	fmt.Fprintf(log, "servegate: PASS — all payloads bit-identical solo vs loaded server, cold and warm\n")
	return nil
}
