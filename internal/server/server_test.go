package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cgcm/internal/core"
	"cgcm/internal/runlog"
)

// gpuVec does enough data-parallel work that the optimized strategy
// allocates device memory — the subject of the quota tests.
const gpuVec = `
int main() {
	int n = 512;
	float *a = (float*)malloc(n * sizeof(float));
	float *b = (float*)malloc(n * sizeof(float));
	for (int i = 0; i < n; i++) a[i] = (float)i;
	for (int i = 0; i < n; i++) b[i] = (float)(i * 2);
	for (int t = 0; t < 4; t++) {
		for (int i = 0; i < n; i++) a[i] = a[i] * 1.5 + b[i];
	}
	float sum = 0.0;
	for (int i = 0; i < n; i++) sum += a[i];
	print_float(sum / 1000000.0);
	free(a);
	free(b);
	return 0;
}`

// slowLoop launches more kernels than any test deadline allows.
const slowLoop = `
int main() {
	int n = 256;
	float *a = (float*)malloc(n * sizeof(float));
	for (int i = 0; i < n; i++) a[i] = (float)i;
	for (int t = 0; t < 200000; t++) {
		for (int i = 0; i < n; i++) a[i] = a[i] * 1.0001 + 0.5;
	}
	print_float(a[0]);
	free(a);
	return 0;
}`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func mustRequest(t *testing.T, tenant, program, source string, opts RunOptions, deadlineMS int64) *RunRequest {
	t.Helper()
	body, err := json.Marshal(RunRequest{Tenant: tenant, Program: program, Source: source, Options: opts, DeadlineMS: deadlineMS})
	if err != nil {
		t.Fatal(err)
	}
	req, derr := DecodeRequest(body, 0)
	if derr != nil {
		t.Fatalf("decode: %v", derr)
	}
	return req
}

// TestSubmitMatchesSolo: the smallest instance of the headline
// invariant — one request's payload equals the solo run's.
func TestSubmitMatchesSolo(t *testing.T) {
	s := newTestServer(t, Config{})
	req := mustRequest(t, "a", "vec.c", gpuVec, RunOptions{}, 0)

	rep, err := core.CompileAndRun("vec.c", gpuVec, req.CoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := newRunResponse(req, rep, false, 0).Payload()
	if err != nil {
		t.Fatal(err)
	}

	resp, serr, _ := s.Submit(context.Background(), req)
	if serr != nil {
		t.Fatalf("submit: %v", serr)
	}
	got, err := resp.Payload()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("payload differs:\nserver: %s\nsolo:   %s", got, want)
	}
	if resp.Output != rep.Output {
		t.Fatal("output differs from solo run")
	}
}

// TestSubmitDeadline: a deadline expiring mid-run returns the typed
// 504 outcome with the DeadlineError detail, and unwraps to
// context.DeadlineExceeded.
func TestSubmitDeadline(t *testing.T) {
	s := newTestServer(t, Config{})
	req := mustRequest(t, "a", "slow.c", slowLoop, RunOptions{}, 30)
	resp, serr, dl := s.Submit(context.Background(), req)
	if resp != nil || serr == nil {
		t.Fatalf("slow run finished under a 30ms deadline (resp=%v serr=%v)", resp, serr)
	}
	if serr.Code != CodeDeadline || serr.HTTPStatus() != http.StatusGatewayTimeout {
		t.Fatalf("code = %s/%d, want %s/504", serr.Code, serr.HTTPStatus(), CodeDeadline)
	}
	if dl == nil {
		t.Fatal("no DeadlineError detail")
	}
	if dl.Cause != "deadline" || dl.Tenant != "a" {
		t.Fatalf("detail = %+v", dl)
	}
	if !errors.Is(dl, context.DeadlineExceeded) {
		t.Fatalf("DeadlineError does not unwrap to context.DeadlineExceeded: %v", dl)
	}
}

// TestSubmitClientDisconnect: a canceled caller context aborts the run
// with the 499 outcome.
func TestSubmitClientDisconnect(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	req := mustRequest(t, "a", "slow.c", slowLoop, RunOptions{}, 0)
	_, serr, dl := s.Submit(ctx, req)
	if serr == nil || serr.Code != CodeCanceled || serr.HTTPStatus() != 499 {
		t.Fatalf("disconnect outcome = %v, want %s/499", serr, CodeCanceled)
	}
	if dl == nil || dl.Cause != "disconnect" {
		t.Fatalf("detail = %+v, want cause=disconnect", dl)
	}
}

// TestQuotaDegradesLosslessly: an over-quota tenant's run degrades to
// CPU fallback with bit-identical output — and succeeds.
func TestQuotaDegradesLosslessly(t *testing.T) {
	plain, err := core.CompileAndRun("vec.c", gpuVec, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{TenantQuotas: map[string]int64{"starved": 64}})
	req := mustRequest(t, "starved", "vec.c", gpuVec, RunOptions{}, 0)
	resp, serr, _ := s.Submit(context.Background(), req)
	if serr != nil {
		t.Fatalf("over-quota run failed instead of degrading: %v", serr)
	}
	if resp.Output != plain.Output {
		t.Fatalf("degraded output %q != plain output %q — degradation is not lossless", resp.Output, plain.Output)
	}
	_, _, denials := s.QuotaPool().Usage("starved")
	if denials == 0 {
		t.Fatal("no quota denials recorded; the quota never engaged")
	}
}

// TestQuotaDoesNotStarveOthers: while one tenant is starved by its
// quota, an unlimited tenant's run on the same server is unaffected.
func TestQuotaDoesNotStarveOthers(t *testing.T) {
	s := newTestServer(t, Config{TenantQuotas: map[string]int64{"starved": 64}})
	for _, tenant := range []string{"starved", "free"} {
		req := mustRequest(t, tenant, "vec.c", gpuVec, RunOptions{}, 0)
		if _, serr, _ := s.Submit(context.Background(), req); serr != nil {
			t.Fatalf("tenant %s: %v", tenant, serr)
		}
	}
	if _, _, denials := s.QuotaPool().Usage("free"); denials != 0 {
		t.Fatal("unlimited tenant hit quota denials")
	}
}

// TestShutdownDrains: Shutdown serves everything admitted, sheds new
// work with 503, and returns once the pool exits.
func TestShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueCapacity: 16})
	const inFlight = 6
	type outcome struct {
		resp *RunResponse
		serr *Error
	}
	results := make(chan outcome, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			req := mustRequest(t, "a", "vec.c", gpuVec, RunOptions{}, 0)
			resp, serr, _ := s.Submit(context.Background(), req)
			results <- outcome{resp, serr}
		}()
	}
	// Give the submissions a moment to enqueue, then drain.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Post-drain submissions are shed with the typed 503.
	req := mustRequest(t, "a", "vec.c", gpuVec, RunOptions{}, 0)
	if _, serr, _ := s.Submit(context.Background(), req); serr == nil || serr.Code != CodeDraining {
		t.Fatalf("post-drain submit = %v, want %s", serr, CodeDraining)
	}
	for i := 0; i < inFlight; i++ {
		o := <-results
		if o.serr != nil {
			t.Fatalf("admitted request %d failed during drain: %v", i, o.serr)
		}
	}
}

// TestShutdownDeadlineCancelsInFlight: when the drain deadline expires,
// running requests are canceled and answer with typed outcomes instead
// of hanging the drain.
func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Error, 1)
	go func() {
		req := mustRequest(t, "a", "slow.c", slowLoop, RunOptions{}, 0)
		_, serr, _ := s.Submit(context.Background(), req)
		done <- serr
	}()
	time.Sleep(50 * time.Millisecond) // let the run start
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("shutdown reported clean drain despite canceling an in-flight run")
	}
	serr := <-done
	if serr == nil || serr.Code != CodeCanceled {
		t.Fatalf("force-canceled request outcome = %v, want %s", serr, CodeCanceled)
	}
}

// TestRunlogRecords: with a store configured, every completed request
// leaves one durable record before Shutdown returns.
func TestRunlogRecords(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{RunlogDir: dir})
	const n = 3
	for i := 0; i < n; i++ {
		req := mustRequest(t, "a", "vec.c", gpuVec, RunOptions{}, 0)
		if _, serr, _ := s.Submit(context.Background(), req); serr != nil {
			t.Fatal(serr)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	store, err := runlog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("%d run records, want %d", len(entries), n)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Program, "a/") {
			t.Fatalf("record program %q lacks the tenant prefix", e.Program)
		}
	}
}

// TestHTTPEndToEnd drives the full HTTP surface: a good run, a typed
// 4xx, health, and per-tenant metrics.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	// Success.
	body, _ := json.Marshal(RunRequest{Tenant: "web", Program: "vec.c", Source: gpuVec})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/run", strings.NewReader(string(body))))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /run = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OutputSHA256 == "" || resp.Tenant != "web" {
		t.Fatalf("response %+v", resp)
	}

	// Typed 400 with the error body.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/run", strings.NewReader("not json")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", rec.Code)
	}
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == nil || eb.Error.Code != CodeBadRequest {
		t.Fatalf("error body %s (err=%v)", rec.Body.String(), err)
	}

	// Health.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}

	// Metrics: per-tenant samples labeled, exactly one TYPE line per
	// metric even with several tenants on the page.
	body2, _ := json.Marshal(RunRequest{Tenant: "batch", Program: "vec.c", Source: gpuVec})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/run", strings.NewReader(string(body2))))
	if rec.Code != http.StatusOK {
		t.Fatalf("second tenant run = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	page := rec.Body.String()
	for _, want := range []string{
		`cgcmd_requests_admitted{tenant="web"} 1`,
		`cgcmd_requests_admitted{tenant="batch"} 1`,
		`cgcmd_queue_delay_seconds_count{tenant="web"}`,
		"cgcmd_cache_misses",
		"cgcmd_queue_depth",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q\npage:\n%s", want, page)
		}
	}
	if n := strings.Count(page, "# TYPE cgcmd_requests_admitted "); n != 1 {
		t.Errorf("TYPE line for admitted appears %d times, want 1", n)
	}

	// Draining flips health.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/run", strings.NewReader(string(body))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /run = %d, want 503", rec.Code)
	}
}

// TestHTTPMethodRouting: wrong methods do not reach the handlers.
func TestHTTPMethodRouting(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/run", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run = %d, want 405", rec.Code)
	}
}
