package server

import (
	"fmt"
	"testing"
	"time"
)

func mkTask(tenant string) *task {
	return &task{
		req:      &RunRequest{Tenant: tenant},
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
}

// TestSchedulerShedsExactExcess: capacity K with K+N offered admits
// exactly K and sheds exactly N, every shed typed queue_full (429).
func TestSchedulerShedsExactExcess(t *testing.T) {
	const K, N = 8, 29
	s := newScheduler(K, nil)
	var shed int
	for i := 0; i < K+N; i++ {
		if err := s.enqueue(mkTask(fmt.Sprintf("t%d", i%3))); err != nil {
			if err.Code != CodeQueueFull {
				t.Fatalf("shed error code = %s, want %s", err.Code, CodeQueueFull)
			}
			if err.HTTPStatus() != 429 {
				t.Fatalf("shed status = %d, want 429", err.HTTPStatus())
			}
			shed++
		}
	}
	if shed != N {
		t.Fatalf("shed %d of %d excess requests, want exactly %d", shed, N, N)
	}
	if got := s.queued(); got != K {
		t.Fatalf("queued = %d, want %d", got, K)
	}
	// Dequeuing one slot frees exactly one admission.
	s.drain() // so next() won't block when empty later
	if tk, ok := s.next(); !ok || tk == nil {
		t.Fatal("next() returned no task from a full queue")
	}
}

// TestSchedulerWeightedRoundRobin: with weights a=3, b=1 and both
// queues saturated, the pick sequence interleaves 3:1 deterministically.
func TestSchedulerWeightedRoundRobin(t *testing.T) {
	s := newScheduler(100, map[string]int{"a": 3, "b": 1})
	for i := 0; i < 8; i++ {
		if err := s.enqueue(mkTask("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.enqueue(mkTask("b")); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 12; i++ {
		tk := s.dequeueLockedForTest()
		if tk == nil {
			t.Fatalf("pick %d: no task", i)
		}
		order = append(order, tk.req.Tenant)
	}
	want := []string{"a", "a", "a", "b", "a", "a", "a", "b", "a", "a", "b", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pick sequence %v, want %v", order, want)
		}
	}
}

// TestSchedulerFairnessUnderBurst: one tenant's burst cannot starve
// another — the second tenant's lone request is picked within one
// weight cycle, not after the burst.
func TestSchedulerFairnessUnderBurst(t *testing.T) {
	s := newScheduler(1000, nil)
	for i := 0; i < 500; i++ {
		if err := s.enqueue(mkTask("noisy")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.enqueue(mkTask("quiet")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tk := s.dequeueLockedForTest()
		if tk.req.Tenant == "quiet" {
			return
		}
	}
	t.Fatal("quiet tenant not scheduled within 3 picks of a 500-request burst")
}

// TestSchedulerDrainSemantics: draining sheds new work with 503 but
// still serves everything already admitted.
func TestSchedulerDrainSemantics(t *testing.T) {
	s := newScheduler(10, nil)
	for i := 0; i < 3; i++ {
		if err := s.enqueue(mkTask("t")); err != nil {
			t.Fatal(err)
		}
	}
	s.drain()
	if err := s.enqueue(mkTask("t")); err == nil {
		t.Fatal("enqueue admitted during drain")
	} else if err.Code != CodeDraining || err.HTTPStatus() != 503 {
		t.Fatalf("drain shed = %s/%d, want %s/503", err.Code, err.HTTPStatus(), CodeDraining)
	}
	for i := 0; i < 3; i++ {
		if _, ok := s.next(); !ok {
			t.Fatalf("queued task %d dropped by drain; drain must serve admitted work", i)
		}
	}
	if _, ok := s.next(); ok {
		t.Fatal("next() returned a task from a drained empty queue")
	}
}

// dequeueLockedForTest wraps dequeueLocked with the lock held.
func (s *scheduler) dequeueLockedForTest() *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dequeueLocked()
}
