// Typed error catalogue of the service. Every way a request can fail
// maps to exactly one code with a fixed HTTP status, so clients (and
// tests) can branch on machine-readable causes instead of message
// strings. The catalogue is part of the API surface and documented in
// DESIGN.md's "Service mode" section.
package server

import (
	"fmt"
	"net/http"

	"cgcm/internal/machine"
	runtimelib "cgcm/internal/runtime"
)

// Code identifies one failure class.
type Code string

// Failure classes.
const (
	// CodeBadRequest: the request body is not valid JSON, or a field
	// fails validation (bad strategy, bad fault spec, absurd option).
	CodeBadRequest Code = "bad_request"
	// CodeSourceTooLarge: the program source exceeds the configured cap.
	CodeSourceTooLarge Code = "source_too_large"
	// CodeQueueFull: admission control shed the request — the bounded
	// queue was at capacity. Clients should back off and retry.
	CodeQueueFull Code = "queue_full"
	// CodeDraining: the server is shutting down and no longer admits
	// work. Clients should fail over to another instance.
	CodeDraining Code = "draining"
	// CodeCompile: the program failed to compile (a client error: the
	// source is wrong, not the server).
	CodeCompile Code = "compile_failed"
	// CodeRunFailed: the program compiled but its execution faulted.
	CodeRunFailed Code = "run_failed"
	// CodeDeadline: the request's deadline expired mid-run; the response
	// carries the partial statistics via DeadlineError.
	CodeDeadline Code = "deadline_exceeded"
	// CodeCanceled: the client disconnected mid-run.
	CodeCanceled Code = "canceled"
	// CodeInternal: a server-side invariant broke.
	CodeInternal Code = "internal"
)

// httpStatus maps each code to its transport status.
func httpStatus(c Code) int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest // 400
	case CodeSourceTooLarge:
		return http.StatusRequestEntityTooLarge // 413
	case CodeQueueFull:
		return http.StatusTooManyRequests // 429
	case CodeDraining:
		return http.StatusServiceUnavailable // 503
	case CodeCompile, CodeRunFailed:
		return http.StatusUnprocessableEntity // 422
	case CodeDeadline:
		return http.StatusGatewayTimeout // 504
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	}
	return http.StatusInternalServerError // 500
}

// Error is the typed service error: a catalogue code plus a
// human-readable message. It is what every non-2xx response body
// carries (see ErrorBody) and what the in-process submit path returns.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// HTTPStatus returns the transport status for the error's code.
func (e *Error) HTTPStatus() int { return httpStatus(e.Code) }

// errf builds a typed error with a formatted message.
func errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// DeadlineError is the typed outcome of a run aborted by its deadline
// or by client disconnect: which tenant, how far the run got, and the
// machine/runtime statistics accumulated up to the abort point — the
// "partial Stats" a caller can use to size a retry deadline.
type DeadlineError struct {
	Tenant  string           `json:"tenant"`
	Program string           `json:"program"`
	Cause   string           `json:"cause"` // "deadline" or "disconnect"
	Stats   machine.Stats    `json:"stats"`
	RTStats runtimelib.Stats `json:"rt_stats"`

	err error // underlying cancellation chain
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("tenant %s: program %s: %s expired after %.1fus simulated: %v",
		e.Tenant, e.Program, e.Cause, e.Stats.Wall*1e6, e.err)
}

// Unwrap exposes the cancellation chain, so errors.Is(err,
// context.DeadlineExceeded) works through a DeadlineError.
func (e *DeadlineError) Unwrap() error { return e.err }
