// Package server is the multi-tenant compile+run service behind cgcmd:
// a long-running front end over the CGCM library that stays correct and
// responsive under overload, tenant misbehavior, and injected device
// faults. Robustness is layered:
//
//   - Admission control and backpressure (sched.go): a bounded request
//     queue with weighted round-robin fairness across tenants; excess
//     load is shed instantly with typed 429/503 responses, and the
//     worker pool is the concurrency limiter.
//   - Deadlines and cancellation: each request runs under a context
//     combining the server's lifetime, the request deadline, and the
//     client connection; a fired deadline aborts the run at the next
//     kernel-launch boundary with a typed *DeadlineError carrying the
//     partial statistics.
//   - Per-tenant GPU-memory quotas (machine.QuotaPool): an over-quota
//     tenant's allocations are denied like capacity OOM, so the PR 5
//     resilience ladder evicts that tenant's own cached units first and
//     degrades its run losslessly to CPU fallback — never touching
//     other tenants.
//   - A singleflight compilation cache (cache.go) keyed by source
//     hash plus the canonical Options fingerprint.
//
// The headline invariant extends the resilience model's: a request's
// response payload (output hash, Stats, ledger) is bit-identical
// whether the run executed alone, under contention, cached or uncached,
// or under any injected fault schedule. Gate checks it across the whole
// bench suite.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"cgcm/internal/cli"
	"cgcm/internal/core"
	"cgcm/internal/interp"
	"cgcm/internal/machine"
	"cgcm/internal/metrics"
	"cgcm/internal/runlog"
)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size — the run concurrency limit.
	// 0 means GOMAXPROCS.
	Workers int
	// QueueCapacity bounds the admission queue (queued, not yet running
	// requests). 0 means 4 × workers.
	QueueCapacity int
	// DefaultDeadline applies when a request sets no deadline_ms
	// (0 = unbounded).
	DefaultDeadline time.Duration
	// MaxSourceBytes caps request source size (0 = DefaultMaxSourceBytes).
	MaxSourceBytes int
	// DefaultQuota is the per-tenant device-memory quota in bytes
	// (0 = unlimited); TenantQuotas overrides per tenant.
	DefaultQuota int64
	TenantQuotas map[string]int64
	// Weights sets per-tenant scheduling weights (default 1 each).
	Weights map[string]int
	// RunlogDir, when set, appends one durable run record per completed
	// request to the store at this directory.
	RunlogDir string
}

// tenantState is everything the server keeps per tenant: its metrics
// registry (exported with a tenant label), its quota governor, and
// pre-resolved instruments for the request path.
type tenantState struct {
	name string
	reg  *metrics.Registry
	gov  machine.MemGovernor

	admitted   *metrics.Counter
	shed       *metrics.Counter
	completed  *metrics.Counter
	failed     *metrics.Counter
	deadlines  *metrics.Counter
	cacheHits  *metrics.Counter
	cacheMiss  *metrics.Counter
	queueDelay *metrics.Histogram
}

// QueueDelayBuckets returns the queueing-delay histogram bounds: 1 µs
// to ~16 s, powers of 4 — the p99 the acceptance criteria report is
// interpolated inside these.
func QueueDelayBuckets() []float64 { return metrics.ExpBuckets(1e-6, 4, 13) }

// Server is one service instance.
type Server struct {
	cfg   Config
	sched *scheduler
	cache *compileCache
	pool  *machine.QuotaPool
	store *runlog.Store

	reg     *metrics.Registry // server-wide instruments
	hostReg *metrics.Registry // per-scrape Go runtime gauges

	mu      sync.Mutex
	tenants map[string]*tenantState

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workers    sync.WaitGroup

	shutdownOnce sync.Once
	shutdownErr  error
}

// New builds and starts a server: the worker pool is running and
// Submit/Handler accept work when it returns.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 4 * cfg.Workers
	}
	s := &Server{
		cfg:     cfg,
		sched:   newScheduler(cfg.QueueCapacity, cfg.Weights),
		cache:   newCompileCache(),
		pool:    machine.NewQuotaPool(cfg.DefaultQuota),
		reg:     metrics.New(),
		hostReg: metrics.New(),
		tenants: make(map[string]*tenantState),
	}
	for t, q := range cfg.TenantQuotas {
		s.pool.SetQuota(t, q)
	}
	if cfg.RunlogDir != "" {
		st, err := runlog.Open(cfg.RunlogDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.store = st
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.workerLoop()
	}
	return s, nil
}

// tenant returns (creating on first sight) the tenant's state.
func (s *Server) tenant(name string) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts, ok := s.tenants[name]; ok {
		return ts
	}
	reg := metrics.New()
	// A governor is attached only when the tenant has a finite quota:
	// attaching one switches runs into the resilient runtime (device-copy
	// caching, eviction), and an unlimited tenant's runs must stay
	// bit-identical to plain solo cgcmrun runs.
	var gov machine.MemGovernor
	if s.pool.Quota(name) > 0 {
		gov = s.pool.Governor(name)
	}
	ts := &tenantState{
		name:       name,
		reg:        reg,
		gov:        gov,
		admitted:   reg.Counter("cgcmd.requests.admitted"),
		shed:       reg.Counter("cgcmd.requests.shed"),
		completed:  reg.Counter("cgcmd.requests.completed"),
		failed:     reg.Counter("cgcmd.requests.failed"),
		deadlines:  reg.Counter("cgcmd.requests.deadline_expired"),
		cacheHits:  reg.Counter("cgcmd.cache.hits"),
		cacheMiss:  reg.Counter("cgcmd.cache.misses"),
		queueDelay: reg.Histogram("cgcmd.queue.delay_seconds", QueueDelayBuckets()),
	}
	s.tenants[name] = ts
	return ts
}

// tenantNames lists the tenants seen so far, sorted.
func (s *Server) tenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Submit runs one validated request through admission, scheduling, and
// execution, blocking until its outcome. ctx is the caller's lifetime
// (the client connection for HTTP): its cancellation aborts the
// request. Exactly one of the three results is non-nil — except a
// deadline outcome, which returns both the typed *Error and the
// *DeadlineError detail.
func (s *Server) Submit(ctx context.Context, req *RunRequest) (*RunResponse, *Error, *DeadlineError) {
	ts := s.tenant(req.Tenant)

	// The request context layers server lifetime ← client connection ←
	// deadline. The deadline clock starts at admission, so queueing time
	// counts against it — a request cannot hide from its deadline in the
	// queue.
	rctx, rcancel := context.WithCancel(s.baseCtx)
	defer rcancel()
	stop := context.AfterFunc(ctx, rcancel)
	defer stop()
	if d := s.effectiveDeadline(req); d > 0 {
		var tcancel context.CancelFunc
		rctx, tcancel = context.WithTimeout(rctx, d)
		defer tcancel()
	}

	t := &task{req: req, ctx: rctx, enqueued: time.Now(), done: make(chan struct{})}
	if aerr := s.sched.enqueue(t); aerr != nil {
		// Shed path: no goroutine, no allocation beyond the error —
		// overload costs the server almost nothing per rejected request.
		ts.shed.Inc()
		return nil, aerr, nil
	}
	ts.admitted.Inc()
	<-t.done
	return t.resp, t.errResp, t.deadline
}

func (s *Server) effectiveDeadline(req *RunRequest) time.Duration {
	if d := req.Deadline(); d > 0 {
		return d
	}
	return s.cfg.DefaultDeadline
}

// workerLoop is one pool worker: take the next scheduled task, run it,
// repeat until drain.
func (s *Server) workerLoop() {
	defer s.workers.Done()
	for {
		t, ok := s.sched.next()
		if !ok {
			return
		}
		s.process(t)
	}
}

// process executes one admitted task end to end and publishes its
// outcome.
func (s *Server) process(t *task) {
	defer close(t.done)
	req := t.req
	ts := s.tenant(req.Tenant)
	delay := time.Since(t.enqueued)
	ts.queueDelay.Observe(delay.Seconds())

	// A request whose context fired while queued is not run at all; the
	// deadline outcome carries zero stats.
	if cerr := t.ctx.Err(); cerr != nil {
		t.errResp, t.deadline = s.cancelOutcome(ts, req, cerr, nil)
		return
	}

	key := cacheKey(req.Program, req.Source, req.CoreOptions())
	prog, cached, err := s.cache.get(t.ctx, key, func() (*core.Program, error) {
		return core.CompileContext(t.ctx, req.Program, req.Source, req.CoreOptions())
	})
	if err != nil {
		if t.ctx.Err() != nil {
			t.errResp, t.deadline = s.cancelOutcome(ts, req, err, nil)
			return
		}
		ts.failed.Inc()
		t.errResp = errf(CodeCompile, "%v", err)
		return
	}
	if cached {
		ts.cacheHits.Inc()
	} else {
		ts.cacheMiss.Inc()
	}

	rep, rerr := prog.RunWith(core.RunConfig{Ctx: t.ctx, Metrics: ts.reg, MemGovernor: ts.gov})
	if rerr != nil {
		var cancelErr *interp.CancelError
		if errors.As(rerr, &cancelErr) || t.ctx.Err() != nil {
			t.errResp, t.deadline = s.cancelOutcome(ts, req, rerr, rep)
			return
		}
		ts.failed.Inc()
		t.errResp = errf(CodeRunFailed, "%v", rerr)
		return
	}
	ts.completed.Inc()
	t.resp = newRunResponse(req, rep, cached, delay.Nanoseconds())
	if s.store != nil {
		rec := cli.NewRunRecord(req.Tenant+"/"+req.Program, req.CoreOptions(), rep, delay.Nanoseconds())
		// Record-store failures must not fail the request: the run
		// succeeded; provenance is best-effort.
		_, _ = s.store.Append(rec)
	}
}

// cancelOutcome classifies a canceled task: deadline expiry vs client
// disconnect (or server-forced drain cancel), with partial statistics
// when the run got far enough to have any.
func (s *Server) cancelOutcome(ts *tenantState, req *RunRequest, cause error, rep *core.Report) (*Error, *DeadlineError) {
	de := &DeadlineError{Tenant: req.Tenant, Program: req.Program, err: cause}
	code := CodeCanceled
	de.Cause = "disconnect"
	if errors.Is(cause, context.DeadlineExceeded) {
		code = CodeDeadline
		de.Cause = "deadline"
	}
	if rep != nil {
		de.Stats = rep.Stats
		de.RTStats = rep.RTStats
	}
	ts.deadlines.Inc()
	return errf(code, "%v", de), de
}

// Handler returns the service's HTTP surface:
//
//	POST /run      one compile+run request (JSON body: RunRequest)
//	GET  /metrics  Prometheus exposition: server-wide, then per-tenant
//	               samples labeled {tenant="..."}, then host gauges
//	GET  /healthz  200 while serving, 503 while draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	maxSource := s.cfg.MaxSourceBytes
	if maxSource <= 0 {
		maxSource = DefaultMaxSourceBytes
	}
	limit := int64(maxSource)*2 + 8192
	body, err := io.ReadAll(io.LimitReader(r.Body, limit))
	if err != nil {
		writeError(w, errf(CodeBadRequest, "reading body: %v", err), nil)
		return
	}
	req, derr := DecodeRequest(body, maxSource)
	if derr != nil {
		writeError(w, derr, nil)
		return
	}
	resp, serr, dl := s.Submit(r.Context(), req)
	if serr != nil {
		writeError(w, serr, dl)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics writes one exposition page: server-wide instruments
// first, then every tenant's registry labeled {tenant="name"}, then the
// host runtime gauges. TYPE lines are deduplicated across sections.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.refreshServerGauges()
	seen := make(map[string]bool)
	if err := metrics.WritePrometheusLabeled(w, s.reg.Snapshot(), nil, seen); err != nil {
		return
	}
	for _, name := range s.tenantNames() {
		ts := s.tenant(name)
		s.refreshTenantGauges(ts)
		if err := metrics.WritePrometheusLabeled(w, ts.reg.Snapshot(), map[string]string{"tenant": name}, seen); err != nil {
			return
		}
	}
	metrics.UpdateHost(s.hostReg)
	_ = metrics.WritePrometheusLabeled(w, s.hostReg.Snapshot(), nil, seen)
}

// refreshServerGauges publishes scrape-time server-wide state.
func (s *Server) refreshServerGauges() {
	hits, misses, dedups := s.cache.counters()
	s.reg.Gauge("cgcmd.cache.hits").Set(float64(hits))
	s.reg.Gauge("cgcmd.cache.misses").Set(float64(misses))
	s.reg.Gauge("cgcmd.cache.dedups").Set(float64(dedups))
	s.reg.Gauge("cgcmd.queue.depth").Set(float64(s.sched.queued()))
	s.reg.Gauge("cgcmd.queue.capacity").Set(float64(s.cfg.QueueCapacity))
	s.reg.Gauge("cgcmd.workers").Set(float64(s.cfg.Workers))
}

// refreshTenantGauges publishes scrape-time quota state per tenant.
func (s *Server) refreshTenantGauges(ts *tenantState) {
	used, peak, denials := s.pool.Usage(ts.name)
	ts.reg.Gauge("cgcmd.quota.bytes").Set(float64(s.pool.Quota(ts.name)))
	ts.reg.Gauge("cgcmd.quota.used_bytes").Set(float64(used))
	ts.reg.Gauge("cgcmd.quota.peak_bytes").Set(float64(peak))
	ts.reg.Gauge("cgcmd.quota.denials").Set(float64(denials))
}

// writeError renders the typed error body with its catalogue status.
func writeError(w http.ResponseWriter, e *Error, dl *DeadlineError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.HTTPStatus())
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: e, Deadline: dl})
}

// Shutdown drains the server: admission stops immediately (new work is
// shed with 503s), already-admitted requests — queued and running —
// finish normally, and the worker pool exits. If ctx fires before the
// drain completes, every in-flight run is canceled; those requests
// return typed deadline/cancel outcomes with partial statistics. Run
// records are written synchronously at request completion, so when
// Shutdown returns all records of completed requests are durable.
// Idempotent; concurrent calls share one result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.sched.drain()
		done := make(chan struct{})
		go func() {
			s.workers.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.baseCancel()
			<-done
			s.shutdownErr = fmt.Errorf("drain deadline expired: in-flight requests were canceled: %w", ctx.Err())
		}
		s.baseCancel()
	})
	return s.shutdownErr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.sched.mu.Lock()
	defer s.sched.mu.Unlock()
	return s.sched.draining
}

// QuotaPool exposes the server's quota pool (tests and the gate).
func (s *Server) QuotaPool() *machine.QuotaPool { return s.pool }

// CacheCounters reports lifetime compile-cache hit/miss/dedup totals.
func (s *Server) CacheCounters() (hits, misses, dedups int64) { return s.cache.counters() }
