package server

import (
	"encoding/json"
	"strings"
	"testing"

	"cgcm/internal/core"
)

func decode(t *testing.T, body string) (*RunRequest, *Error) {
	t.Helper()
	return DecodeRequest([]byte(body), 0)
}

func TestDecodeRequestValid(t *testing.T) {
	req, derr := decode(t, `{
		"tenant": "alpha",
		"program": "vec.c",
		"source": "int main() { return 0; }",
		"options": {"strategy": "opt", "async": true, "gpu_mem_bytes": 262144, "faults": "seed=7,htod=0.1"},
		"deadline_ms": 5000
	}`)
	if derr != nil {
		t.Fatalf("decode: %v", derr)
	}
	opts := req.CoreOptions()
	if opts.Strategy != core.CGCMOptimized || !opts.Async || opts.GPUMemBytes != 262144 || opts.FaultSpec == nil {
		t.Fatalf("materialized options wrong: %+v", opts)
	}
	if req.Deadline().Milliseconds() != 5000 {
		t.Fatalf("deadline = %v, want 5s", req.Deadline())
	}
}

func TestDecodeRequestDefaults(t *testing.T) {
	req, derr := decode(t, `{"tenant": "a", "source": "int main() { return 0; }"}`)
	if derr != nil {
		t.Fatalf("decode: %v", derr)
	}
	if req.Program != "prog.c" {
		t.Fatalf("default program = %q", req.Program)
	}
	if req.CoreOptions().Strategy != core.CGCMOptimized {
		t.Fatal("default strategy is not opt")
	}
}

// TestDecodeRequestRejections pins every rejection class to its typed
// code.
func TestDecodeRequestRejections(t *testing.T) {
	big := strings.Repeat("x", DefaultMaxSourceBytes+1)
	cases := []struct {
		name string
		body string
		code Code
	}{
		{"empty", ``, CodeBadRequest},
		{"not json", `hello`, CodeBadRequest},
		{"trailing data", `{"tenant":"a","source":"int main(){return 0;}"} extra`, CodeBadRequest},
		{"unknown field", `{"tenant":"a","source":"s","nonsense":1}`, CodeBadRequest},
		{"no tenant", `{"source":"s"}`, CodeBadRequest},
		{"bad tenant chars", `{"tenant":"a b","source":"s"}`, CodeBadRequest},
		{"tenant too long", `{"tenant":"` + strings.Repeat("t", 65) + `","source":"s"}`, CodeBadRequest},
		{"no source", `{"tenant":"a"}`, CodeBadRequest},
		{"source too large", `{"tenant":"a","source":"` + big + `"}`, CodeSourceTooLarge},
		{"negative deadline", `{"tenant":"a","source":"s","deadline_ms":-1}`, CodeBadRequest},
		{"huge deadline", `{"tenant":"a","source":"s","deadline_ms":86400000}`, CodeBadRequest},
		{"bad strategy", `{"tenant":"a","source":"s","options":{"strategy":"warp"}}`, CodeBadRequest},
		{"bad ablate", `{"tenant":"a","source":"s","options":{"ablate":"nosuchpass"}}`, CodeBadRequest},
		{"negative workers", `{"tenant":"a","source":"s","options":{"workers":-1}}`, CodeBadRequest},
		{"absurd workers", `{"tenant":"a","source":"s","options":{"workers":100000}}`, CodeBadRequest},
		{"negative gpu mem", `{"tenant":"a","source":"s","options":{"gpu_mem_bytes":-5}}`, CodeBadRequest},
		{"bad faults", `{"tenant":"a","source":"s","options":{"faults":"chaos=yes"}}`, CodeBadRequest},
		{"wrong type", `{"tenant":17,"source":"s"}`, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, derr := decode(t, tc.body)
			if derr == nil {
				t.Fatalf("decoded %q without error (req=%+v)", tc.body[:min(len(tc.body), 60)], req)
			}
			if derr.Code != tc.code {
				t.Fatalf("code = %s, want %s (%v)", derr.Code, tc.code, derr)
			}
			if derr.HTTPStatus() < 400 || derr.HTTPStatus() >= 500 {
				t.Fatalf("status = %d, want 4xx", derr.HTTPStatus())
			}
		})
	}
}

// TestDecodeRequestBodyCap: a body far beyond the source cap is refused
// before JSON parsing does any work.
func TestDecodeRequestBodyCap(t *testing.T) {
	body := strings.Repeat("a", DefaultMaxSourceBytes*2+4097)
	_, derr := DecodeRequest([]byte(body), 0)
	if derr == nil || derr.Code != CodeSourceTooLarge {
		t.Fatalf("oversized body: %v, want %s", derr, CodeSourceTooLarge)
	}
}

// TestResponsePayloadShape: Payload carries exactly the deterministic
// fields — no host-dependent cached/queue_ns/output text.
func TestResponsePayloadShape(t *testing.T) {
	resp := &RunResponse{Tenant: "a", Program: "p", Cached: true, QueueNS: 123, Output: "42\n", OutputSHA256: "aa", Exit: 0}
	payload, err := resp.Payload()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(payload, &m); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"output_sha256", "exit", "stats", "rt_stats", "comm"} {
		if _, ok := m[want]; !ok {
			t.Errorf("payload missing %q", want)
		}
	}
	for _, banned := range []string{"cached", "queue_ns", "output", "tenant"} {
		if _, ok := m[banned]; ok {
			t.Errorf("payload leaks host-dependent field %q", banned)
		}
	}
}
