// Admission control and fair scheduling: a bounded total queue feeding
// a weighted round-robin scan over per-tenant FIFO queues. Admission is
// all-or-nothing at enqueue time — when the queue is full the request
// is shed immediately with a typed 429, and when the server is draining
// with a typed 503 — so a shed request costs one mutex acquisition and
// spawns nothing. Dequeue order interleaves tenants by weight, so one
// tenant's burst of 10,000 requests delays another tenant by at most
// its own weight share, not by the burst.
package server

import (
	"context"
	"sync"
	"time"
)

// task is one admitted request moving through the scheduler to a
// worker. done closes when resp/errResp/deadline are final. ctx is the
// request's lifetime: server base context + per-request deadline +
// client connection.
type task struct {
	req      *RunRequest
	ctx      context.Context
	enqueued time.Time

	done     chan struct{}
	resp     *RunResponse
	errResp  *Error
	deadline *DeadlineError
}

// scheduler is the bounded multi-queue. All state is guarded by mu;
// next blocks on cond until work or drain.
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	total    int
	draining bool

	queues  map[string][]*task
	ring    []string // tenant scan order: first-seen, stable
	pos     int      // ring position of the next scan
	weights map[string]int
	credit  map[string]int // remaining dequeues this cycle
}

func newScheduler(capacity int, weights map[string]int) *scheduler {
	s := &scheduler{
		capacity: capacity,
		queues:   make(map[string][]*task),
		weights:  make(map[string]int),
		credit:   make(map[string]int),
	}
	for t, w := range weights {
		if w > 0 {
			s.weights[t] = w
		}
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// weightOf returns a tenant's configured weight (default 1).
func (s *scheduler) weightOf(tenant string) int {
	if w, ok := s.weights[tenant]; ok {
		return w
	}
	return 1
}

// enqueue admits t or sheds it with a typed error. Admission never
// blocks.
func (s *scheduler) enqueue(t *task) *Error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errf(CodeDraining, "server is draining; not admitting new work")
	}
	if s.total >= s.capacity {
		return errf(CodeQueueFull, "request queue full (%d queued); retry with backoff", s.total)
	}
	tenant := t.req.Tenant
	if _, seen := s.queues[tenant]; !seen {
		s.ring = append(s.ring, tenant)
		s.credit[tenant] = s.weightOf(tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], t)
	s.total++
	s.cond.Signal()
	return nil
}

// next blocks until a task is available and returns it, or returns
// ok=false when the scheduler is draining and empty — the workers' exit
// signal. Draining still serves queued tasks: everything admitted gets
// a worker.
func (s *scheduler) next() (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.total > 0 {
			if t := s.dequeueLocked(); t != nil {
				return t, true
			}
		}
		if s.draining {
			return nil, false
		}
		s.cond.Wait()
	}
}

// dequeueLocked performs one weighted-round-robin pick: scan the ring
// from pos for a tenant with queued work and remaining credit; if every
// queued tenant is out of credit, start a new cycle by refilling all
// credits. Ring order is first-seen and stable, so the pick sequence is
// a pure function of the enqueue history.
func (s *scheduler) dequeueLocked() *task {
	for pass := 0; pass < 2; pass++ {
		n := len(s.ring)
		for i := 0; i < n; i++ {
			idx := (s.pos + i) % n
			tenant := s.ring[idx]
			q := s.queues[tenant]
			if len(q) == 0 || s.credit[tenant] <= 0 {
				continue
			}
			t := q[0]
			s.queues[tenant] = q[1:]
			s.total--
			s.credit[tenant]--
			// Advance past this tenant only when its credit is spent, so
			// a weight-3 tenant takes up to 3 consecutive picks per visit.
			if s.credit[tenant] <= 0 {
				s.pos = (idx + 1) % n
			} else {
				s.pos = idx
			}
			return t
		}
		// All queued tenants exhausted their cycle credit: new cycle.
		for _, tenant := range s.ring {
			s.credit[tenant] = s.weightOf(tenant)
		}
	}
	return nil
}

// drain stops admission permanently and wakes every waiting worker.
func (s *scheduler) drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// queued reports the current queue occupancy.
func (s *scheduler) queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
