package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cgcm/internal/core"
)

// soakTemplate is one request shape in the soak mix, with what a
// successful response must look like.
type soakTemplate struct {
	name   string
	tenant string
	body   []byte
	// wantPayload is the solo-run payload for fully deterministic
	// configs; empty for the quota tenant, whose concurrent runs contend
	// for one quota (Stats may differ run to run; output never does).
	wantPayload string
	// wantOutput is the solo plain-run output hash every successful
	// response must match.
	wantOutput string
	// wantDeadline marks the template whose requests must expire.
	wantDeadline bool
}

func soloPayloadFor(t *testing.T, tmpl *soakTemplate) {
	t.Helper()
	req, derr := DecodeRequest(tmpl.body, 0)
	if derr != nil {
		t.Fatalf("%s: decode: %v", tmpl.name, derr)
	}
	rep, err := core.CompileAndRun(req.Program, req.Source, req.CoreOptions())
	if err != nil {
		t.Fatalf("%s: solo run: %v", tmpl.name, err)
	}
	p, err := newRunResponse(req, rep, false, 0).Payload()
	if err != nil {
		t.Fatal(err)
	}
	tmpl.wantPayload = string(p)
	tmpl.wantOutput = hashOutput(rep.Output)
}

// TestSoak hammers one server through its full HTTP surface with
// concurrent clients across ≥8 tenants, mixing cache hits and misses,
// deadline expiries, quota evictions, and the standard injected-fault
// plan. Every successful response must be bit-identical to the solo
// run of the same request; every failure must be a typed catalogue
// error; and after the final drain no goroutine may survive. Short
// mode (the `make ci` race run) scales the client count down; the full
// ≥1000-client soak runs under CGCM_SOAK=1 (`make soak`).
func TestSoak(t *testing.T) {
	clients := 120
	queueCap := 48
	if os.Getenv("CGCM_SOAK") != "" {
		clients = 1200
		queueCap = 192
	} else if testing.Short() {
		clients = 60
	}

	mkBody := func(tenant, program, source string, opts RunOptions, deadlineMS int64) []byte {
		b, err := json.Marshal(RunRequest{Tenant: tenant, Program: program, Source: source, Options: opts, DeadlineMS: deadlineMS})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// The mix: six unlimited tenants with deterministic configs (four
	// distinct tiny sources for cache churn, gpuVec plain, gpuVec under
	// the standard fault plan), one quota-starved tenant, one tenant
	// that always misses its deadline. Eight tenants total.
	var templates []*soakTemplate
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("int main() {\n\tprint_int(%d);\n\treturn 0;\n}", 1000+i)
		templates = append(templates, &soakTemplate{
			name:   fmt.Sprintf("tiny%d", i),
			tenant: fmt.Sprintf("t%d", i),
			body:   mkBody(fmt.Sprintf("t%d", i), fmt.Sprintf("tiny%d.c", i), src, RunOptions{}, 0),
		})
	}
	templates = append(templates,
		&soakTemplate{
			name:   "gpu-plain",
			tenant: "t4",
			body:   mkBody("t4", "vec.c", gpuVec, RunOptions{}, 0),
		},
		&soakTemplate{
			name:   "gpu-faults",
			tenant: "t5",
			body:   mkBody("t5", "vec.c", gpuVec, RunOptions{Faults: gateFaultSpec, GPUMem: gateGPUMem}, 0),
		},
	)
	for _, tmpl := range templates {
		soloPayloadFor(t, tmpl)
	}
	// Quota tenant: output must match the plain solo run (lossless
	// degradation), payload intentionally unchecked — concurrent runs
	// share the quota, so eviction counts vary with interleaving.
	plainRep, err := core.CompileAndRun("vec.c", gpuVec, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}
	templates = append(templates,
		&soakTemplate{
			name:       "quota-starved",
			tenant:     "hog",
			body:       mkBody("hog", "vec.c", gpuVec, RunOptions{}, 0),
			wantOutput: hashOutput(plainRep.Output),
		},
		&soakTemplate{
			name:         "deadline",
			tenant:       "rushed",
			body:         mkBody("rushed", "slow.c", slowLoop, RunOptions{}, 5),
			wantDeadline: true,
		},
	)

	goroutinesBefore := runtime.NumGoroutine()
	s, err := New(Config{
		Workers:       4,
		QueueCapacity: queueCap,
		TenantQuotas:  map[string]int64{"hog": 64},
		Weights:       map[string]int{"t0": 3, "rushed": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	var ok200, shed429, expired504, quotaOK atomic.Int64
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		tmpl := templates[i%len(templates)]
		wg.Add(1)
		go func(i int, tmpl *soakTemplate) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/run", strings.NewReader(string(tmpl.body))))
			switch rec.Code {
			case http.StatusOK:
				if tmpl.wantDeadline {
					fail("client %d (%s): completed despite a 5ms deadline", i, tmpl.name)
					return
				}
				var resp RunResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					fail("client %d (%s): bad response JSON: %v", i, tmpl.name, err)
					return
				}
				if tmpl.wantOutput != "" && resp.OutputSHA256 != tmpl.wantOutput {
					fail("client %d (%s): output hash differs from solo run", i, tmpl.name)
					return
				}
				if tmpl.wantPayload != "" {
					got, perr := resp.Payload()
					if perr != nil || string(got) != tmpl.wantPayload {
						fail("client %d (%s): payload differs under load:\n got %s\nwant %s", i, tmpl.name, got, tmpl.wantPayload)
						return
					}
				}
				if tmpl.name == "quota-starved" {
					quotaOK.Add(1)
				}
				ok200.Add(1)
			case http.StatusTooManyRequests:
				var eb ErrorBody
				if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == nil || eb.Error.Code != CodeQueueFull {
					fail("client %d (%s): 429 without typed queue_full body: %s", i, tmpl.name, rec.Body.String())
					return
				}
				shed429.Add(1)
			case http.StatusGatewayTimeout:
				var eb ErrorBody
				if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == nil || eb.Error.Code != CodeDeadline {
					fail("client %d (%s): 504 without typed deadline body: %s", i, tmpl.name, rec.Body.String())
					return
				}
				if !tmpl.wantDeadline {
					fail("client %d (%s): unexpected deadline expiry", i, tmpl.name)
					return
				}
				expired504.Add(1)
			default:
				fail("client %d (%s): status %d: %s", i, tmpl.name, rec.Code, rec.Body.String())
			}
		}(i, tmpl)
	}
	wg.Wait()

	t.Logf("soak: %d clients → %d ok, %d shed(429), %d deadline(504)",
		clients, ok200.Load(), shed429.Load(), expired504.Load())
	for _, f := range failures {
		t.Error(f)
	}
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded; the soak exercised nothing")
	}
	if expired504.Load() == 0 && clients >= len(templates) {
		t.Error("no deadline expiry observed; the deadline path went unexercised")
	}
	if hits, _, _ := s.CacheCounters(); hits == 0 {
		t.Error("no compilation-cache hits under a duplicate-heavy mix")
	}
	if quotaOK.Load() > 0 {
		if _, _, denials := s.QuotaPool().Usage("hog"); denials == 0 {
			t.Error("quota tenant completed runs without a single denial; quota never engaged")
		}
	}

	// Drain: admitted work finishes, new work sheds typed 503, and the
	// whole pool unwinds.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/run", strings.NewReader(string(templates[0].body))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request = %d, want 503", rec.Code)
	}

	// Zero goroutine leaks — including from every shed request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after drain\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
