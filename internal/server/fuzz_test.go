package server

import (
	"strings"
	"testing"
)

// FuzzServerRequest pushes arbitrary bytes through the service's
// hostile boundary. The contract: DecodeRequest returns a typed 4xx
// *Error or a valid request — it never panics and never classifies a
// malformed body as a server-side (5xx) failure. Seeded with valid
// requests, every rejection class, and structural JSON edge cases so
// mutation explores the validator, not just the JSON parser.
func FuzzServerRequest(f *testing.F) {
	seeds := []string{
		`{"tenant":"a","source":"int main() { return 0; }"}`,
		`{"tenant":"alpha","program":"vec.c","source":"int main() { return 0; }","options":{"strategy":"opt","async":true,"workers":4,"gpu_mem_bytes":262144,"faults":"seed=7,htod=0.2"},"deadline_ms":5000}`,
		`{"tenant":"a","source":"s","options":{"strategy":"warp"}}`,
		`{"tenant":"a","source":"s","options":{"ablate":"doall"}}`,
		`{"tenant":"a","source":"s","deadline_ms":-1}`,
		`{"tenant":"a","source":"s","deadline_ms":999999999999}`,
		`{"tenant":17,"source":"s"}`,
		`{"tenant":"a","source":"s"} trailing`,
		`{"tenant":"a","source":"s","nonsense":{}}`,
		`{"tenant":"` + strings.Repeat("x", 100) + `","source":"s"}`,
		`{"tenant":"a","source":"` + strings.Repeat("y", 5000) + `"}`,
		`{"options":{"workers":-99999999}}`,
		`[]`,
		`null`,
		`"just a string"`,
		`{}`,
		``,
		`{"tenant":"a","source":"s","options":{"gpu_mem_bytes":1099511627777}}`,
		`{"tenant":" ","source":"s"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, derr := DecodeRequest(body, 0)
		if req == nil && derr == nil {
			t.Fatal("DecodeRequest returned neither a request nor an error")
		}
		if req != nil && derr != nil {
			t.Fatal("DecodeRequest returned both a request and an error")
		}
		if derr != nil {
			if st := derr.HTTPStatus(); st < 400 || st >= 500 {
				t.Fatalf("malformed input mapped to status %d (%s); must be 4xx", st, derr.Code)
			}
			return
		}
		// A request that decoded must satisfy its own invariants.
		if !validTenant(req.Tenant) {
			t.Fatalf("decoded request carries invalid tenant %q", req.Tenant)
		}
		if req.Source == "" || len(req.Source) > DefaultMaxSourceBytes {
			t.Fatalf("decoded request violates source bounds: %d bytes", len(req.Source))
		}
		if req.Deadline() < 0 || req.Deadline() > maxDeadline {
			t.Fatalf("decoded request violates deadline bounds: %v", req.Deadline())
		}
	})
}
