// Request decoding and validation: the hostile boundary of the service.
// Everything arriving here is untrusted bytes from a tenant; every exit
// is either a fully validated RunRequest or a typed 4xx. The decoder
// never panics — FuzzServerRequest holds it to that.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"

	"cgcm/internal/cli"
	"cgcm/internal/core"
	"cgcm/internal/faultinject"
	"cgcm/internal/machine"
	runtimelib "cgcm/internal/runtime"
	"cgcm/internal/trace"
)

// Request limits; Config can tighten MaxSourceBytes.
const (
	// DefaultMaxSourceBytes caps program source size (1 MiB).
	DefaultMaxSourceBytes = 1 << 20
	// maxTenantLen bounds tenant names.
	maxTenantLen = 64
	// maxProgramLen bounds program names.
	maxProgramLen = 256
	// maxWorkers bounds the per-run kernel-engine worker count.
	maxWorkers = 256
	// maxGPUMem bounds the per-run simulated device capacity (1 TiB).
	maxGPUMem = int64(1) << 40
	// maxFaultsLen bounds the fault-spec string.
	maxFaultsLen = 1024
	// maxDeadline bounds the per-request deadline.
	maxDeadline = time.Hour
)

// RunOptions is the wire form of the execution options a tenant may
// set. It is a strict subset of core.Options: observability sinks and
// cost-model overrides are the server's business, not the tenant's.
type RunOptions struct {
	Strategy string `json:"strategy,omitempty"` // cli.ParseStrategy names; default "opt"
	Ablate   string `json:"ablate,omitempty"`
	Async    bool   `json:"async,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	GPUMem   int64  `json:"gpu_mem_bytes,omitempty"`
	Faults   string `json:"faults,omitempty"`
}

// RunRequest is one tenant's compile+run request.
type RunRequest struct {
	Tenant     string     `json:"tenant"`
	Program    string     `json:"program,omitempty"` // display name; default "prog.c"
	Source     string     `json:"source"`
	Options    RunOptions `json:"options,omitempty"`
	DeadlineMS int64      `json:"deadline_ms,omitempty"` // 0 = server default

	opts core.Options // validated, materialized by DecodeRequest
}

// CoreOptions returns the validated core.Options the request maps to.
// Only valid after DecodeRequest succeeded.
func (r *RunRequest) CoreOptions() core.Options { return r.opts }

// Deadline returns the requested per-run deadline (0 = none requested).
func (r *RunRequest) Deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

// validTenant enforces the tenant-name alphabet: the name becomes a
// metrics label and a map key, so it stays boring.
func validTenant(s string) bool {
	if s == "" || len(s) > maxTenantLen {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// DecodeRequest parses and validates one request body. maxSource caps
// the source size (<= 0 means DefaultMaxSourceBytes). Every failure is
// a typed *Error with a 4xx code; the function never panics on any
// input.
func DecodeRequest(body []byte, maxSource int) (*RunRequest, *Error) {
	if maxSource <= 0 {
		maxSource = DefaultMaxSourceBytes
	}
	// Cheap pre-parse cap: the body bound implies the source bound, so a
	// deliberately huge payload is refused before JSON work. The slack
	// covers field names, escaping, and options.
	if len(body) > maxSource*2+4096 {
		return nil, errf(CodeSourceTooLarge, "request body %d bytes exceeds limit %d", len(body), maxSource*2+4096)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		return nil, errf(CodeBadRequest, "malformed request: %v", err)
	}
	// Trailing garbage after the JSON document is a malformed request,
	// not silently ignored bytes.
	if dec.More() {
		return nil, errf(CodeBadRequest, "malformed request: trailing data after JSON document")
	}
	if !validTenant(req.Tenant) {
		return nil, errf(CodeBadRequest, "tenant name must be 1-%d chars of [a-zA-Z0-9._-], got %q", maxTenantLen, req.Tenant)
	}
	if req.Program == "" {
		req.Program = "prog.c"
	}
	if len(req.Program) > maxProgramLen {
		return nil, errf(CodeBadRequest, "program name exceeds %d bytes", maxProgramLen)
	}
	if req.Source == "" {
		return nil, errf(CodeBadRequest, "source is required")
	}
	if len(req.Source) > maxSource {
		return nil, errf(CodeSourceTooLarge, "source %d bytes exceeds limit %d", len(req.Source), maxSource)
	}
	if req.DeadlineMS < 0 {
		return nil, errf(CodeBadRequest, "deadline_ms must be non-negative, got %d", req.DeadlineMS)
	}
	if d := req.Deadline(); d > maxDeadline {
		return nil, errf(CodeBadRequest, "deadline %v exceeds maximum %v", d, maxDeadline)
	}

	o := req.Options
	strategy := o.Strategy
	if strategy == "" {
		strategy = "opt"
	}
	st, ok := cli.ParseStrategy(strategy)
	if !ok {
		return nil, errf(CodeBadRequest, "unknown strategy %q (sequential|inspector|unopt|opt)", o.Strategy)
	}
	var ablate core.PassSet
	if o.Ablate != "" {
		if err := ablate.Set(o.Ablate); err != nil {
			return nil, errf(CodeBadRequest, "ablate: %v", err)
		}
	}
	if o.Workers < 0 || o.Workers > maxWorkers {
		return nil, errf(CodeBadRequest, "workers must be 0-%d, got %d", maxWorkers, o.Workers)
	}
	if o.GPUMem < 0 || o.GPUMem > maxGPUMem {
		return nil, errf(CodeBadRequest, "gpu_mem_bytes must be 0-%d, got %d", maxGPUMem, o.GPUMem)
	}
	var spec *faultinject.Spec
	if o.Faults != "" {
		if len(o.Faults) > maxFaultsLen {
			return nil, errf(CodeBadRequest, "faults spec exceeds %d bytes", maxFaultsLen)
		}
		s, err := faultinject.ParseSpec(o.Faults)
		if err != nil {
			return nil, errf(CodeBadRequest, "faults: %v", err)
		}
		spec = s
	}
	req.opts = core.Options{
		Strategy:    st,
		Ablate:      ablate,
		Async:       o.Async,
		Workers:     o.Workers,
		GPUMemBytes: o.GPUMem,
		FaultSpec:   spec,
	}
	return &req, nil
}

// RunResponse is the success payload of one request. Everything under
// the deterministic section is bit-identical whether the run executed
// alone or under contention, cached or uncached, and under any injected
// fault schedule — the service's headline invariant, gated by Gate.
type RunResponse struct {
	Tenant  string `json:"tenant"`
	Program string `json:"program"`

	// Cached reports a compilation-cache hit; QueueNS is the time the
	// request waited for a worker. Both are host-dependent and excluded
	// from Payload.
	Cached  bool  `json:"cached"`
	QueueNS int64 `json:"queue_ns"`

	Output       string           `json:"output"`
	OutputSHA256 string           `json:"output_sha256"`
	Exit         int64            `json:"exit"`
	Stats        machine.Stats    `json:"stats"`
	RTStats      runtimelib.Stats `json:"rt_stats"`
	Comm         trace.Ledger     `json:"comm"`
}

// Payload renders the deterministic portion of the response — output
// hash, exit, Stats, runtime Stats, and the communication ledger — as
// canonical JSON, the unit of the bit-identity invariant.
func (r *RunResponse) Payload() ([]byte, error) {
	return json.Marshal(struct {
		OutputSHA256 string           `json:"output_sha256"`
		Exit         int64            `json:"exit"`
		Stats        machine.Stats    `json:"stats"`
		RTStats      runtimelib.Stats `json:"rt_stats"`
		Comm         trace.Ledger     `json:"comm"`
	}{r.OutputSHA256, r.Exit, r.Stats, r.RTStats, r.Comm})
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error *Error `json:"error"`
	// Deadline carries the partial statistics of a deadline-aborted run.
	Deadline *DeadlineError `json:"deadline,omitempty"`
}

// hashOutput returns the hex SHA-256 of a run's output.
func hashOutput(out string) string {
	sum := sha256.Sum256([]byte(out))
	return hex.EncodeToString(sum[:])
}

// newRunResponse assembles the response from a finished report.
func newRunResponse(req *RunRequest, rep *core.Report, cached bool, queueNS int64) *RunResponse {
	return &RunResponse{
		Tenant:       req.Tenant,
		Program:      req.Program,
		Cached:       cached,
		QueueNS:      queueNS,
		Output:       rep.Output,
		OutputSHA256: hashOutput(rep.Output),
		Exit:         rep.Exit,
		Stats:        rep.Stats,
		RTStats:      rep.RTStats,
		Comm:         rep.Comm,
	}
}
