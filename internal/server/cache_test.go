package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"cgcm/internal/core"
)

const tinyProg = `
int main() {
	print_int(42);
	return 0;
}`

func TestCacheKeySensitivity(t *testing.T) {
	base := cacheKey("p.c", tinyProg, core.Options{Strategy: core.CGCMOptimized})
	if cacheKey("p.c", tinyProg, core.Options{Strategy: core.CGCMOptimized}) != base {
		t.Fatal("identical inputs produced different keys")
	}
	if cacheKey("q.c", tinyProg, core.Options{Strategy: core.CGCMOptimized}) == base {
		t.Fatal("program name not in the key")
	}
	if cacheKey("p.c", tinyProg+" ", core.Options{Strategy: core.CGCMOptimized}) == base {
		t.Fatal("source not in the key")
	}
	if cacheKey("p.c", tinyProg, core.Options{Strategy: core.CGCMUnoptimized}) == base {
		t.Fatal("strategy not in the key")
	}
	if cacheKey("p.c", tinyProg, core.Options{Strategy: core.CGCMOptimized, Async: true}) == base {
		t.Fatal("async not in the key")
	}
	// Workers is host-dependent and cannot change simulated results:
	// requests differing only there share one compilation.
	if cacheKey("p.c", tinyProg, core.Options{Strategy: core.CGCMOptimized, Workers: 7}) != base {
		t.Fatal("worker count leaked into the key")
	}
}

// TestCacheSingleflight: a herd of concurrent gets for one key runs the
// compile exactly once; the waiters count as dedups, later gets as hits.
func TestCacheSingleflight(t *testing.T) {
	c := newCompileCache()
	var compiles atomic.Int64
	gate := make(chan struct{})

	const herd = 16
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prog, _, err := c.get(context.Background(), "k", func() (*core.Program, error) {
				compiles.Add(1)
				<-gate
				return core.Compile("p.c", tinyProg, core.Options{Strategy: core.CGCMOptimized})
			})
			if err != nil || prog == nil {
				t.Errorf("get: prog=%v err=%v", prog, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compile ran %d times for one key, want 1", n)
	}
	// A get after completion is a hit with cached=true.
	_, cached, err := c.get(context.Background(), "k", func() (*core.Program, error) {
		t.Fatal("compile re-ran for a finished entry")
		return nil, nil
	})
	if err != nil || !cached {
		t.Fatalf("post-completion get: cached=%v err=%v, want true/nil", cached, err)
	}
	// Which side of the hit/dedup split a waiter lands on depends on
	// scheduling; the invariants are one miss and herd accounted for.
	hits, misses, dedups := c.counters()
	if misses != 1 || hits+dedups != herd {
		t.Fatalf("counters hits=%d misses=%d dedups=%d, want misses=1 and hits+dedups=%d", hits, misses, dedups, herd)
	}
}

// TestCacheNegativeCaching: a failed compilation is cached; the herd
// learns the failure once.
func TestCacheNegativeCaching(t *testing.T) {
	c := newCompileCache()
	boom := errors.New("boom")
	var compiles int
	for i := 0; i < 3; i++ {
		_, _, err := c.get(context.Background(), "bad", func() (*core.Program, error) {
			compiles++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("get %d: err = %v, want boom", i, err)
		}
	}
	if compiles != 1 {
		t.Fatalf("failing compile ran %d times, want 1", compiles)
	}
}

// TestCacheWaiterCancellation: a canceled waiter unblocks with its
// context error while the shared compile continues for everyone else.
func TestCacheWaiterCancellation(t *testing.T) {
	c := newCompileCache()
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.get(context.Background(), "k", func() (*core.Program, error) {
			close(started)
			<-gate
			return core.Compile("p.c", tinyProg, core.Options{Strategy: core.CGCMOptimized})
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.get(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
	}
	close(gate)
	// The shared compile still completes and serves later callers.
	prog, _, err := c.get(context.Background(), "k", nil)
	if err != nil || prog == nil {
		t.Fatalf("post-cancel get: prog=%v err=%v", prog, err)
	}
}
