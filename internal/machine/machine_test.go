package machine

import (
	"strings"
	"testing"
	"testing/quick"

	"cgcm/internal/trace"
)

func newM() *Machine { return New(DefaultCostModel()) }

func TestAllocLoadStore(t *testing.T) {
	m := newM()
	base := m.Alloc(CPU, 64, "buf")
	if base == 0 {
		t.Fatal("zero base")
	}
	if err := m.Store(base+8, 8, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(base+8, 8)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("Load = %#x, %v", v, err)
	}
	// Byte access and little-endian layout.
	if err := m.Store(base, 8, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	b0, _ := m.Load(base, 1)
	b7, _ := m.Load(base+7, 1)
	if b0 != 0x08 || b7 != 0x01 {
		t.Errorf("little-endian violated: b0=%#x b7=%#x", b0, b7)
	}
}

func TestZeroInitialized(t *testing.T) {
	m := newM()
	base := m.Alloc(CPU, 16, "z")
	v, _ := m.Load(base, 8)
	if v != 0 {
		t.Errorf("fresh memory = %#x", v)
	}
}

func TestSpaces(t *testing.T) {
	m := newM()
	c := m.Alloc(CPU, 8, "c")
	g := m.Alloc(GPU, 8, "g")
	if SpaceOf(c) != CPU || SpaceOf(g) != GPU {
		t.Fatalf("space classification wrong: %#x %#x", c, g)
	}
}

func TestFaults(t *testing.T) {
	m := newM()
	base := m.Alloc(CPU, 16, "buf")
	// Unmapped.
	if _, err := m.Load(0x42, 8); err == nil {
		t.Error("null-ish load succeeded")
	}
	// Past the end.
	if _, err := m.Load(base+16, 8); err == nil {
		t.Error("load past end succeeded")
	}
	// Straddling the end.
	if err := m.Store(base+12, 8, 1); err == nil {
		t.Error("straddling store succeeded")
	}
	// After free.
	if err := m.Free(CPU, base); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(base, 8); err == nil {
		t.Error("use-after-free load succeeded")
	}
	// Double free.
	if err := m.Free(CPU, base); err == nil {
		t.Error("double free succeeded")
	}
	// Fault message names the unit.
	big := m.Alloc(CPU, 8, "named-unit")
	_, err := m.Load(big+4, 8)
	if err == nil || !strings.Contains(err.Error(), "named-unit") {
		t.Errorf("fault lacks unit name: %v", err)
	}
}

func TestFindSegment(t *testing.T) {
	m := newM()
	a := m.Alloc(CPU, 32, "a")
	b := m.Alloc(CPU, 32, "b")
	if s := m.FindSegment(a + 31); s == nil || s.Base != a {
		t.Error("interior address not resolved")
	}
	if s := m.FindSegment(b); s == nil || s.Base != b {
		t.Error("base address not resolved")
	}
	m.Free(CPU, a)
	if s := m.FindSegment(a); s != nil {
		t.Error("freed segment still found")
	}
}

func TestTransfersMoveBytes(t *testing.T) {
	m := newM()
	c := m.Alloc(CPU, 16, "c")
	g := m.Alloc(GPU, 16, "g")
	m.Store(c, 8, 1234)
	if err := m.CopyHtoD(g, c, 16); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Load(g, 8)
	if v != 1234 {
		t.Errorf("HtoD did not copy: %d", v)
	}
	m.Store(g+8, 8, 777)
	if err := m.CopyDtoH(c, g, 16); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Load(c+8, 8)
	if v != 777 {
		t.Errorf("DtoH did not copy: %d", v)
	}
	st := m.Stats()
	if st.BytesHtoD != 16 || st.BytesDtoH != 16 || st.NumHtoD != 1 || st.NumDtoH != 1 {
		t.Errorf("transfer stats wrong: %+v", st)
	}
}

func TestTimingCyclicVsOverlap(t *testing.T) {
	// A DtoH after a kernel must wait for the kernel (cyclic); a CPU-only
	// sequence runs concurrently with the GPU (acyclic overlap).
	cyclic := newM()
	cyclic.LaunchKernel("k", 128, 1_000_000, 10_000)
	cyclic.ChargeTransfer(trace.KindDtoH, 8)
	cyc := cyclic.Stats().Wall

	overlap := newM()
	overlap.LaunchKernel("k", 128, 1_000_000, 10_000)
	overlap.CPUOps(1_000_000) // CPU work hides the kernel
	ovl := overlap.Stats().Wall

	kernelOnly := newM()
	kernelOnly.LaunchKernel("k", 128, 1_000_000, 10_000)
	kernelOnly.Sync()
	ko := kernelOnly.Stats().Wall

	if cyc <= ko {
		t.Errorf("cyclic wall %.3g not greater than kernel-only %.3g", cyc, ko)
	}
	cpuOnly := float64(1_000_000) * overlap.Cost.CPUOp
	if ovl > ko+cpuOnly {
		t.Errorf("no overlap: wall %.3g > kernel %.3g + cpu %.3g", ovl, ko, cpuOnly)
	}
	// With enough CPU work the kernel is fully hidden.
	if ovl < cpuOnly {
		t.Errorf("wall %.3g below CPU time %.3g", ovl, cpuOnly)
	}
}

func TestKernelCriticalPath(t *testing.T) {
	m := newM()
	// One thread doing all the work: critical path, not throughput.
	m.LaunchKernel("serial", 1, 1000, 1000)
	m.Sync()
	wantMin := float64(1000) * m.Cost.GPUOp
	if m.Stats().GPUTime < wantMin {
		t.Errorf("GPU time %.3g below critical path %.3g", m.Stats().GPUTime, wantMin)
	}
	// Many threads: throughput bound.
	m2 := newM()
	m2.LaunchKernel("wide", 480_000, 480_000, 1)
	m2.Sync()
	throughput := float64(480_000) * m2.Cost.GPUOp / float64(m2.Cost.GPUCores)
	if got := m2.Stats().GPUTime; got < throughput {
		t.Errorf("GPU time %.3g below throughput bound %.3g", got, throughput)
	}
}

func TestTrace(t *testing.T) {
	m := newM()
	tr := trace.New()
	m.SetTracer(tr)
	m.CPUOps(1000)
	m.LaunchKernel("k", 16, 1600, 100)
	m.ChargeTransfer(trace.KindDtoH, 64)
	m.FlushTrace()
	kinds := map[trace.Kind]int{}
	for _, s := range tr.Spans() {
		kinds[s.Kind]++
		if s.End < s.Start {
			t.Errorf("span %v ends before start", s)
		}
	}
	if kinds[trace.KindCPU] == 0 || kinds[trace.KindKernel] == 0 || kinds[trace.KindDtoH] == 0 {
		t.Errorf("trace missing kinds: %v", kinds)
	}
}

// TestQuickMemoryRoundTrip property: any stored word reads back.
func TestQuickMemoryRoundTrip(t *testing.T) {
	m := newM()
	base := m.Alloc(CPU, 4096, "q")
	f := func(off uint16, val uint64) bool {
		addr := base + uint64(off%4088)
		if err := m.Store(addr, 8, val); err != nil {
			return false
		}
		got, err := m.Load(addr, 8)
		return err == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickWallMonotonic property: every operation advances (or keeps)
// the clock, never rewinds it.
func TestQuickWallMonotonic(t *testing.T) {
	f := func(ops []uint8) bool {
		m := newM()
		last := 0.0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				m.CPUOps(int64(op))
			case 1:
				m.LaunchKernel("k", int64(op)+1, int64(op)*10, int64(op))
			case 2:
				m.ChargeTransfer(trace.KindHtoD, int64(op))
			case 3:
				m.Sync()
			}
			w := m.Stats().Wall
			if w < last {
				return false
			}
			last = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
