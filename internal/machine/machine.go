// Package machine simulates the paper's experimental platform: a host CPU
// and a discrete GPU with divided memories joined by a PCIe-like link.
//
// The simulation has two independent concerns:
//
//   - Functional: two 64-bit address spaces holding allocation-unit
//     segments. Loads and stores resolve against the segment table and
//     fault if they cross spaces (a CPU dereference of a GPU pointer or
//     vice versa), exactly the failure mode CGCM's communication
//     management exists to prevent. Pointers are plain integers, so all
//     of C's pointer arithmetic works, including arithmetic that walks
//     inside an allocation unit.
//
//   - Temporal: a virtual clock advanced by an analytic cost model
//     (CPU op cost, GPU op throughput, kernel launch overhead, transfer
//     latency and bandwidth). The CPU and GPU have separate timelines;
//     kernels launch asynchronously and device-to-host transfers
//     synchronize, so cyclic communication patterns pay the round-trip
//     price the paper's Figure 2 illustrates while acyclic patterns
//     overlap CPU and GPU work.
package machine

import (
	"fmt"
	"math"

	"cgcm/internal/faultinject"
	"cgcm/internal/metrics"
	"cgcm/internal/rbtree"
	"cgcm/internal/trace"
)

// Space identifies an address space.
type Space int

// Address spaces.
const (
	CPU Space = iota
	GPU
)

func (s Space) String() string {
	if s == GPU {
		return "GPU"
	}
	return "CPU"
}

// Address space layout: the GPU space begins at GPUBase. Nothing is ever
// allocated in [0, nullGuard) so that null and small integers fault.
const (
	GPUBase   uint64 = 0x4000_0000_0000
	nullGuard uint64 = 0x1_0000
)

// SpaceOf returns which space an address belongs to.
func SpaceOf(addr uint64) Space {
	if addr >= GPUBase {
		return GPU
	}
	return CPU
}

// Fault is a memory access error: out of bounds, unmapped, freed, or
// wrong-space access.
type Fault struct {
	Addr uint64
	Size int64
	Msg  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("memory fault at %#x (size %d): %s", f.Addr, f.Size, f.Msg)
}

// Segment is a single allocation unit in one of the spaces.
type Segment struct {
	Base  uint64
	Data  []byte
	Space Space
	Name  string // diagnostic label ("global x", "malloc", "alloca main")
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Base + uint64(len(s.Data)) }

// Load reads size bytes (1 or 8) at addr directly from the segment,
// reporting false when the access falls outside it. Interpreter inline
// caches use this fast path; Machine.Load is the general entry point.
func (s *Segment) Load(addr uint64, size int64) (uint64, bool) {
	off := addr - s.Base
	if addr < s.Base || off+uint64(size) > uint64(len(s.Data)) {
		return 0, false
	}
	if size == 1 {
		return uint64(s.Data[off]), true
	}
	d := s.Data[off : off+8]
	return uint64(d[0]) | uint64(d[1])<<8 | uint64(d[2])<<16 | uint64(d[3])<<24 |
		uint64(d[4])<<32 | uint64(d[5])<<40 | uint64(d[6])<<48 | uint64(d[7])<<56, true
}

// Store writes size bytes (1 or 8) at addr directly into the segment,
// reporting false when the access falls outside it.
func (s *Segment) Store(addr uint64, size int64, val uint64) bool {
	off := addr - s.Base
	if addr < s.Base || off+uint64(size) > uint64(len(s.Data)) {
		return false
	}
	if size == 1 {
		s.Data[off] = byte(val)
		return true
	}
	d := s.Data[off : off+8]
	d[0] = byte(val)
	d[1] = byte(val >> 8)
	d[2] = byte(val >> 16)
	d[3] = byte(val >> 24)
	d[4] = byte(val >> 32)
	d[5] = byte(val >> 40)
	d[6] = byte(val >> 48)
	d[7] = byte(val >> 56)
	return true
}

// CostModel holds the analytic timing parameters, in seconds and bytes.
// The defaults approximate the paper's platform: a 2.4 GHz Core 2 Quad
// host, a GTX 480 with 480 CUDA cores, and a PCIe link whose per-transfer
// latency dwarfs per-byte cost for small transfers — the property that
// makes cyclic patterns slow.
type CostModel struct {
	CPUOp          float64 // seconds per CPU scalar operation
	GPUOp          float64 // seconds per GPU scalar operation on one core
	GPUCores       int     // parallel GPU lanes
	LaunchCPU      float64 // CPU-side cost to enqueue a kernel
	LaunchGPU      float64 // GPU-side fixed overhead per kernel
	TransferLat    float64 // fixed latency per DMA transfer
	TransferPerB   float64 // seconds per byte of DMA payload
	AllocGPU       float64 // cuMemAlloc cost
	InspectorPerOp float64 // CPU cost per inspected memory access (inspector-executor)

	// SyncAfterLaunch makes every kernel launch synchronous, removing
	// CPU/GPU overlap. Used by the overlap ablation benchmark; real
	// CUDA launches are asynchronous.
	SyncAfterLaunch bool
}

// DefaultCostModel returns the calibrated cost model used by the
// evaluation harness.
func DefaultCostModel() CostModel {
	return CostModel{
		CPUOp:        0.55e-9, // ~1.8 IPC at 2.4GHz, SSE-vectorized baseline
		GPUOp:        2.5e-9,  // per core; 480 cores aggregate
		GPUCores:     480,
		LaunchCPU:    2e-6,
		LaunchGPU:    3e-6,
		TransferLat:  15e-6,
		TransferPerB: 1.0 / 0.6e9,
		// Bandwidth is expressed relative to simulated compute: the
		// interpreter charges ~4 IR ops per source flop (explicit address
		// arithmetic), so PCIe bytes are scaled by the same factor to
		// keep the paper's compute-to-transfer balance (~26 flops per
		// transferred float on the Core2/GTX480 platform).
		AllocGPU:       10e-6,
		InspectorPerOp: 1.5e-9, // address-stream walk, no FP work
	}
}

// spanLane maps a machine span kind to its display lane; the synchronous
// verbs emit on these fixed lanes, while stream copies emit on their
// stream's own lane (see stream.go).
func spanLane(k trace.Kind) trace.Lane {
	switch k {
	case trace.KindKernel:
		return trace.LaneGPU
	case trace.KindHtoD, trace.KindDtoH:
		return trace.LaneXfer
	}
	return trace.LaneCPU
}

// Stats aggregates the temporal counters the evaluation reports.
type Stats struct {
	CPUTime    float64 // total busy CPU compute time
	GPUTime    float64 // total busy GPU kernel time
	CommTime   float64 // total transfer time (latency + payload)
	StallTime  float64 // CPU time spent waiting for the GPU
	Wall       float64 // final wall-clock (CPU timeline after Sync)
	BytesHtoD  int64
	BytesDtoH  int64
	NumHtoD    int64
	NumDtoH    int64
	NumKernels int64
	CPUOps     int64
	GPUOps     int64

	// OverlappedBytes counts transferred bytes whose DMA time ran
	// concurrently with CPU or GPU work (asynchronous stream copies);
	// always 0 on a synchronous run.
	OverlappedBytes int64

	// Resilience counters (zero on a fault-free, infinite-memory run).
	InjectedFaults  int64   // faults fired by the fault plan
	PenaltyTime     float64 // retry-backoff and rescue-overhead time
	RescueCopies    int64   // DtoH copies over the slow reliable channel
	FallbackKernels int64   // kernels executed on the CPU after degradation
	FallbackOps     int64   // scalar ops those kernels executed
}

// Machine is one simulated host+device pair.
type Machine struct {
	Cost CostModel

	segs    [2]rbtree.Tree[*Segment]
	nextCPU uint64
	nextGPU uint64

	cpuTime  float64
	gpuReady float64

	stats Stats

	// tr, when non-nil, receives structured timeline spans.
	tr *trace.Tracer

	// pendingCPU accumulates CPU op time not yet flushed to the trace, so
	// traces show contiguous CPU spans rather than one per instruction.
	pendingCPUStart float64
	pendingCPUOps   int64

	// cache holds recently accessed segments per space (4-way, round
	// robin): kernels typically stream a handful of arrays, and each
	// entry saves a tree walk per access.
	cache    [2][4]*Segment
	cacheIdx [2]uint8

	// gen increments whenever a segment is freed, invalidating the
	// interpreter's per-instruction inline caches.
	gen uint64

	// met holds pre-resolved metrics instruments; all nil (free no-ops)
	// unless SetMetrics attached a registry.
	met machMetrics

	// Device model (faults.go): capacity is the GPU memory limit in bytes
	// (0 = unlimited), gpuUsed/gpuPeak track aligned GPU-space segment
	// bytes, and plan injects deterministic faults when non-nil.
	capacity int64
	gpuUsed  int64
	gpuPeak  int64
	plan     *faultinject.Plan

	// Quota model (quota.go): gov, when non-nil, must approve every
	// AllocDevice; govBytes remembers how much each reserved base was
	// charged so Free releases exactly what was reserved (GPU segments
	// created by plain Alloc are never charged to the governor).
	gov      MemGovernor
	govBytes map[uint64]int64

	// Stream state (stream.go): created streams, in-flight async copies
	// awaiting temporal resolution, the flow-id allocator linking issue
	// instants to copy spans, and the overlap sink feeding the ledger.
	streams     []*Stream
	pending     []asyncOp
	nextFlow    uint64
	overlapSink func(hostBase uint64, overlapped int64)
}

// machMetrics is the machine's pre-resolved instrument set. Handles are
// resolved once in SetMetrics so per-event updates never touch the
// registry map.
type machMetrics struct {
	kernelLaunches  *metrics.Counter
	kernelDur       *metrics.Histogram
	htodBytes       *metrics.Histogram
	dtohBytes       *metrics.Histogram
	faultsInjected  *metrics.Counter
	fallbackKernels *metrics.Counter
	overlappedBytes *metrics.Counter
	streamDepth     *metrics.Histogram
}

// Gen returns the segment-table generation; it changes whenever a
// segment is freed, so any cached *Segment from an older generation must
// be re-validated.
func (m *Machine) Gen() uint64 { return m.gen }

// New creates a machine with the given cost model.
func New(cost CostModel) *Machine {
	return &Machine{
		Cost:    cost,
		nextCPU: nullGuard,
		nextGPU: GPUBase,
	}
}

// SetTracer directs the machine's timeline spans into t (nil disables).
func (m *Machine) SetTracer(t *trace.Tracer) { m.tr = t }

// SetMetrics resolves the machine's instruments against r (nil detaches:
// every instrument handle becomes a nil no-op). Instrument names:
//
//	machine.kernel.launches         counter, kernel launches
//	machine.kernel.duration_seconds histogram, per-kernel simulated duration
//	machine.xfer.htod_bytes         histogram, per-transfer H2D payload
//	machine.xfer.dtoh_bytes         histogram, per-transfer D2H payload
//	machine.faults.injected         counter, faults fired by the fault plan
//	machine.fallback.kernels        counter, kernels run on the CPU after degradation
//	machine.xfer.overlapped_bytes   counter, transfer bytes overlapped with compute
//	machine.stream.depth            histogram, in-flight async copies at each issue
func (m *Machine) SetMetrics(r *metrics.Registry) {
	m.met = machMetrics{
		kernelLaunches:  r.Counter("machine.kernel.launches"),
		kernelDur:       r.Histogram("machine.kernel.duration_seconds", KernelDurBuckets()),
		htodBytes:       r.Histogram("machine.xfer.htod_bytes", TransferSizeBuckets()),
		dtohBytes:       r.Histogram("machine.xfer.dtoh_bytes", TransferSizeBuckets()),
		faultsInjected:  r.Counter("machine.faults.injected"),
		fallbackKernels: r.Counter("machine.fallback.kernels"),
		overlappedBytes: r.Counter("machine.xfer.overlapped_bytes"),
		streamDepth:     r.Histogram("machine.stream.depth", StreamDepthBuckets()),
	}
}

// TransferSizeBuckets returns the canonical transfer-size histogram
// bounds: 64 B to ~1 GB, powers of 4.
func TransferSizeBuckets() []float64 { return metrics.ExpBuckets(64, 4, 13) }

// KernelDurBuckets returns the canonical kernel-duration histogram
// bounds: 1 µs to ~16 s, powers of 4.
func KernelDurBuckets() []float64 { return metrics.ExpBuckets(1e-6, 4, 13) }

// StreamDepthBuckets returns the canonical stream-depth histogram bounds:
// 1 to 128 in-flight copies, powers of 2.
func StreamDepthBuckets() []float64 { return metrics.ExpBuckets(1, 2, 8) }

// Tracer returns the machine's tracer, if any.
func (m *Machine) Tracer() *trace.Tracer { return m.tr }

// Stats returns a snapshot of the counters; Wall reflects a full sync,
// including any still-pending stream copies.
func (m *Machine) Stats() Stats {
	s := m.stats
	s.Wall = m.cpuTime
	if m.gpuReady > s.Wall {
		s.Wall = m.gpuReady
	}
	for _, op := range m.pending {
		if op.end > s.Wall {
			s.Wall = op.end
		}
	}
	return s
}

// Now returns the CPU timeline's current time.
func (m *Machine) Now() float64 { return m.cpuTime }

func align(n uint64) uint64 { return (n + 15) &^ 15 }

// Alloc creates a segment of size bytes in the given space and returns its
// base address. Size 0 allocates a 1-byte unit (like malloc(0) returning a
// unique pointer).
func (m *Machine) Alloc(space Space, size int64, name string) uint64 {
	if size <= 0 {
		size = 1
	}
	var base uint64
	if space == CPU {
		base = m.nextCPU
		m.nextCPU = align(m.nextCPU + uint64(size))
	} else {
		base = m.nextGPU
		m.nextGPU = align(m.nextGPU + uint64(size))
		m.gpuUsed += int64(align(uint64(size)))
		if m.gpuUsed > m.gpuPeak {
			m.gpuPeak = m.gpuUsed
		}
	}
	seg := &Segment{Base: base, Data: make([]byte, size), Space: space, Name: name}
	m.segs[space].Put(base, seg)
	return base
}

// Free removes the segment at base. It is an error to free a non-base
// address or an unmapped address, matching C. A free waits for any
// in-flight stream copy over the segment's range first, so memory is
// never reclaimed under an active DMA.
func (m *Machine) Free(space Space, base uint64) error {
	seg, ok := m.segs[space].Get(base)
	if !ok {
		return &Fault{Addr: base, Msg: fmt.Sprintf("free of non-allocated %s address", space)}
	}
	if len(m.pending) > 0 {
		m.waitRange(space, base, int64(len(seg.Data)))
	}
	if space == GPU {
		m.gpuUsed -= int64(align(uint64(len(seg.Data))))
		if n, ok := m.govBytes[base]; ok && m.gov != nil {
			m.gov.Release(n)
			delete(m.govBytes, base)
		}
	}
	m.segs[space].Delete(base)
	for i, c := range &m.cache[space] {
		if c != nil && c.Base == base {
			m.cache[space][i] = nil
		}
	}
	m.gen++
	return nil
}

// FindSegment returns the segment containing addr, or nil.
func (m *Machine) FindSegment(addr uint64) *Segment {
	space := SpaceOf(addr)
	for _, c := range &m.cache[space] {
		if c != nil && addr >= c.Base && addr < c.End() {
			return c
		}
	}
	_, seg, ok := m.segs[space].GreatestLTE(addr)
	if !ok || addr >= seg.End() {
		return nil
	}
	i := m.cacheIdx[space]
	m.cache[space][i] = seg
	m.cacheIdx[space] = (i + 1) & 3
	return seg
}

// LookupSegment returns the segment containing addr without touching the
// machine's internal access cache, so any number of goroutines may call
// it concurrently as long as no segment is allocated or freed. The
// parallel kernel-execution engine uses it while worker goroutines share
// the segment tree read-only for the duration of a launch.
func (m *Machine) LookupSegment(addr uint64) *Segment {
	_, seg, ok := m.segs[SpaceOf(addr)].GreatestLTE(addr)
	if !ok || addr >= seg.End() {
		return nil
	}
	return seg
}

func (m *Machine) segmentFor(addr uint64, size int64) (*Segment, error) {
	seg := m.FindSegment(addr)
	if seg == nil {
		return nil, &Fault{Addr: addr, Size: size, Msg: "unmapped address"}
	}
	if addr+uint64(size) > seg.End() {
		return nil, &Fault{Addr: addr, Size: size, Msg: fmt.Sprintf(
			"access crosses end of allocation unit %q [%#x,%#x)", seg.Name, seg.Base, seg.End())}
	}
	return seg, nil
}

// Load reads size bytes (1 or 8) at addr, little-endian, zero-extended.
func (m *Machine) Load(addr uint64, size int64) (uint64, error) {
	seg, err := m.segmentFor(addr, size)
	if err != nil {
		return 0, err
	}
	off := addr - seg.Base
	if size == 1 {
		return uint64(seg.Data[off]), nil
	}
	d := seg.Data[off : off+8]
	return uint64(d[0]) | uint64(d[1])<<8 | uint64(d[2])<<16 | uint64(d[3])<<24 |
		uint64(d[4])<<32 | uint64(d[5])<<40 | uint64(d[6])<<48 | uint64(d[7])<<56, nil
}

// Store writes size bytes (1 or 8) of val at addr, little-endian.
func (m *Machine) Store(addr uint64, size int64, val uint64) error {
	seg, err := m.segmentFor(addr, size)
	if err != nil {
		return err
	}
	off := addr - seg.Base
	if size == 1 {
		seg.Data[off] = byte(val)
		return nil
	}
	d := seg.Data[off : off+8]
	d[0] = byte(val)
	d[1] = byte(val >> 8)
	d[2] = byte(val >> 16)
	d[3] = byte(val >> 24)
	d[4] = byte(val >> 32)
	d[5] = byte(val >> 40)
	d[6] = byte(val >> 48)
	d[7] = byte(val >> 56)
	return nil
}

// ReadBytes copies n bytes out of a single allocation unit.
func (m *Machine) ReadBytes(addr uint64, n int64) ([]byte, error) {
	seg, err := m.segmentFor(addr, n)
	if err != nil {
		return nil, err
	}
	off := addr - seg.Base
	out := make([]byte, n)
	copy(out, seg.Data[off:])
	return out, nil
}

// WriteBytes copies data into a single allocation unit at addr.
func (m *Machine) WriteBytes(addr uint64, data []byte) error {
	seg, err := m.segmentFor(addr, int64(len(data)))
	if err != nil {
		return err
	}
	copy(seg.Data[addr-seg.Base:], data)
	return nil
}

// emit records one timeline span; no-op unless a tracer is attached.
func (m *Machine) emit(kind trace.Kind, start, end float64, name string, bytes int64, unit string) {
	if m.tr == nil {
		return
	}
	m.tr.Emit(trace.Span{
		Kind: kind, Lane: spanLane(kind), Name: name,
		Start: start, End: end, Bytes: bytes, Unit: unit,
	})
}

func (m *Machine) flushCPUSpan() {
	if m.pendingCPUOps > 0 {
		m.emit(trace.KindCPU, m.pendingCPUStart, m.cpuTime,
			fmt.Sprintf("%d ops", m.pendingCPUOps), 0, "")
		m.pendingCPUOps = 0
	}
}

// CPUOps charges n scalar operations to the CPU timeline.
func (m *Machine) CPUOps(n int64) {
	if n <= 0 {
		return
	}
	if m.pendingCPUOps == 0 {
		m.pendingCPUStart = m.cpuTime
	}
	m.pendingCPUOps += n
	d := float64(n) * m.Cost.CPUOp
	m.cpuTime += d
	m.stats.CPUTime += d
	m.stats.CPUOps += n
}

// InspectorOps charges n sequential inspection operations to the CPU.
func (m *Machine) InspectorOps(n int64) {
	if n <= 0 {
		return
	}
	d := float64(n) * m.Cost.InspectorPerOp
	m.cpuTime += d
	m.stats.CPUTime += d
	m.emit(trace.KindCPU, m.cpuTime-d, m.cpuTime, fmt.Sprintf("inspect %d", n), 0, "")
}

// LaunchKernel models an asynchronous kernel launch executing totalOps
// scalar operations across threads, where the longest thread executes
// maxThreadOps. The CPU pays only the enqueue cost; the kernel occupies
// the GPU timeline.
func (m *Machine) LaunchKernel(name string, threads int64, totalOps, maxThreadOps int64) {
	m.LaunchKernelAt(name, 0, threads, totalOps, maxThreadOps)
}

// LaunchKernelAt is LaunchKernel tagged with the launch site's source
// line, which the emitted kernel span carries for the profiler. The
// kernel additionally starts no earlier than any wait event (the runtime
// passes the completion events of the async uploads the kernel's live-ins
// depend on); waits delay the GPU, never the CPU.
func (m *Machine) LaunchKernelAt(name string, line int, threads int64, totalOps, maxThreadOps int64, waits ...Event) {
	m.flushCPUSpan()
	m.cpuTime += m.Cost.LaunchCPU
	start := m.cpuTime
	if m.gpuReady > start {
		start = m.gpuReady
	}
	if len(waits) > 0 {
		// base is the start the kernel would have had without the async
		// copies: copy time before base overlapped work that was happening
		// anyway; copy time after base delayed this kernel.
		base := start
		for _, e := range waits {
			if e.t > start {
				start = e.t
			}
		}
		m.resolvePending(start, base)
	}
	// Kernel duration: fixed overhead plus the larger of the aggregate
	// throughput bound and the critical-path (longest thread) bound.
	throughput := float64(totalOps) * m.Cost.GPUOp / float64(m.Cost.GPUCores)
	critical := float64(maxThreadOps) * m.Cost.GPUOp
	dur := m.Cost.LaunchGPU + throughput
	if critical > throughput {
		dur = m.Cost.LaunchGPU + critical
	}
	m.gpuReady = start + dur
	m.stats.GPUTime += dur
	m.stats.NumKernels++
	m.stats.GPUOps += totalOps
	m.met.kernelLaunches.Inc()
	m.met.kernelDur.Observe(dur)
	if m.tr != nil {
		m.tr.Emit(trace.Span{
			Kind: trace.KindKernel, Lane: trace.LaneGPU, Name: name,
			Start: start, End: m.gpuReady, Line: line,
		})
	}
	if m.Cost.SyncAfterLaunch {
		m.stats.StallTime += m.gpuReady - m.cpuTime
		m.cpuTime = m.gpuReady
	}
}

// unitNameAt names the allocation unit containing the CPU-side address of
// a transfer, for span tagging; empty when untraced or unknown.
func (m *Machine) unitNameAt(addr uint64) string {
	if m.tr == nil {
		return ""
	}
	if seg := m.FindSegment(addr); seg != nil {
		return seg.Name
	}
	return ""
}

// CopyHtoD models a host-to-device DMA of n bytes plus the functional byte
// copy from src (CPU space) to dst (GPU space). The transfer must wait for
// in-flight kernels (the device serializes its DMA engine with compute,
// like cudaMemcpy on the default stream).
func (m *Machine) CopyHtoD(dst, src uint64, n int64) error {
	if m.plan != nil {
		if de := m.DecideFault(faultinject.VerbHtoD, m.faultUnitAt(src)); de != nil {
			return de
		}
	}
	data, err := m.ReadBytes(src, n)
	if err != nil {
		return err
	}
	if err := m.WriteBytes(dst, data); err != nil {
		return err
	}
	m.xfer(trace.KindHtoD, n, m.unitNameAt(src))
	m.stats.BytesHtoD += n
	m.stats.NumHtoD++
	return nil
}

// CopyDtoH models a device-to-host DMA of n bytes plus the byte copy.
func (m *Machine) CopyDtoH(dst, src uint64, n int64) error {
	if m.plan != nil {
		if de := m.DecideFault(faultinject.VerbDtoH, m.faultUnitAt(dst)); de != nil {
			return de
		}
	}
	data, err := m.ReadBytes(src, n)
	if err != nil {
		return err
	}
	if err := m.WriteBytes(dst, data); err != nil {
		return err
	}
	m.xfer(trace.KindDtoH, n, m.unitNameAt(dst))
	m.stats.BytesDtoH += n
	m.stats.NumDtoH++
	return nil
}

// ChargeTransfer charges transfer time for n bytes in the given direction
// (trace.KindHtoD or trace.KindDtoH) without moving any bytes (used by
// the idealized inspector-executor, which the paper grants an oracle that
// transfers exactly the needed bytes; the functional copy happens
// wholesale elsewhere).
func (m *Machine) ChargeTransfer(kind trace.Kind, n int64) {
	m.ChargeTransferUnit(kind, n, "")
}

// ChargeTransferUnit is ChargeTransfer with an allocation-unit tag for
// the emitted trace span.
func (m *Machine) ChargeTransferUnit(kind trace.Kind, n int64, unit string) {
	m.xfer(kind, n, unit)
	if kind == trace.KindHtoD {
		m.stats.BytesHtoD += n
		m.stats.NumHtoD++
	} else {
		m.stats.BytesDtoH += n
		m.stats.NumDtoH++
	}
}

// xfer charges one synchronous transfer: a sync-on-default-stream copy.
// It is exactly CopyHtoDAsync/CopyDtoHAsync on an implicit default stream
// followed immediately by WaitEvent — the CPU stalls until in-flight
// kernels drain, pays the DMA inline, and resynchronizes the GPU — kept
// as straight-line code so the synchronous cost model is unchanged.
func (m *Machine) xfer(kind trace.Kind, n int64, unit string) {
	m.flushCPUSpan()
	// Transfers synchronize with the GPU: wait for kernels to drain.
	m.stallTo(m.gpuReady)
	d := m.Cost.TransferLat + float64(n)*m.Cost.TransferPerB
	m.emit(kind, m.cpuTime, m.cpuTime+d, "", n, unit)
	if kind == trace.KindHtoD {
		m.met.htodBytes.Observe(float64(n))
	} else {
		m.met.dtohBytes.Observe(float64(n))
	}
	m.cpuTime += d
	m.gpuReady = m.cpuTime
	m.stats.CommTime += d
}

// ChargeAllocGPU charges the CPU timeline for one cuMemAlloc call. The
// runtime library calls this when Map allocates device memory; kernel
// thread-local scratch is free.
func (m *Machine) ChargeAllocGPU() { m.cpuTime += m.Cost.AllocGPU }

// Sync blocks the CPU until the GPU is idle.
func (m *Machine) Sync() {
	m.flushCPUSpan()
	target := m.gpuReady
	for _, op := range m.pending {
		if op.end > target {
			target = op.end
		}
	}
	m.resolvePending(math.Inf(1), m.cpuTime)
	m.stallTo(target)
}

// FlushTrace closes any open CPU span (call before reading Trace).
func (m *Machine) FlushTrace() { m.flushCPUSpan() }
