// Streams and events: asynchronous copy engines for the simulated device.
//
// A Stream is an ordered queue of DMA copies with its own occupancy: each
// copy starts no earlier than the stream's previous copy finished, so one
// stream models one copy engine. An Event marks the completion of an
// asynchronous operation on the simulated clock; passing events as wait
// dependencies orders operations across streams (and against the GPU
// compute timeline via GPUReadyEvent), exactly like cuEventRecord /
// cuStreamWaitEvent.
//
// The async verbs split the machine's two concerns differently than the
// synchronous ones:
//
//   - Functionally they are eager: the bytes move at issue time, on the
//     root goroutine, in program order. Program output is therefore
//     structurally bit-identical with overlap on or off, at any worker
//     count, under any fault schedule — the PR 1/5 invariant.
//   - Temporally they are deferred: the copy occupies [start, end) on the
//     stream's lane, where start honors the CPU clock, the stream's
//     occupancy, the explicit waits, and (for DtoH) the GPU timeline.
//     The CPU does not stall at issue. Pending copies resolve at the
//     next synchronization point — a kernel launch that waits on them, a
//     host access to a flushing unit, a free of an involved range, or
//     Sync — and the portion of each copy's duration that elapsed before
//     the synchronization observer is credited as overlapped
//     communication (Stats.OverlappedBytes, the ledger's overlap column,
//     and the machine.xfer.overlapped_bytes counter).
//
// Fault injection fires at issue time in the same verb order as the
// synchronous path, so a fault schedule hits the identical call sequence
// whether overlap is on or off.
package machine

import (
	"math"

	"cgcm/internal/faultinject"
	"cgcm/internal/trace"
)

// Stream is one ordered asynchronous copy queue (one simulated DMA
// engine). Create streams with Machine.NewStream; the zero value is not
// usable.
type Stream struct {
	name  string
	lane  trace.Lane
	ready float64 // completion time of the stream's last issued copy
}

// Name returns the stream's diagnostic name.
func (s *Stream) Name() string { return s.name }

// Event marks the completion of an asynchronous operation on the
// simulated clock. The zero Event is "already complete" and waits for
// nothing.
type Event struct {
	t    float64
	flow uint64
}

// Time returns the simulated completion time the event represents.
func (e Event) Time() float64 { return e.t }

// asyncOp is one in-flight stream copy awaiting temporal resolution.
type asyncOp struct {
	kind       trace.Kind // KindHtoD or KindDtoH
	bytes      int64
	start, end float64
	hostBase   uint64 // CPU-side range the copy reads (HtoD) or writes (DtoH)
	hostEnd    uint64
	devBase    uint64 // GPU-side range
	devEnd     uint64
}

// NewStream creates a stream. Each stream gets its own trace lane
// (trace.LaneStreamBase + index) so its copies render on a dedicated
// timeline in the Perfetto export.
func (m *Machine) NewStream(name string) *Stream {
	s := &Stream{name: name, lane: trace.LaneStreamBase + trace.Lane(len(m.streams))}
	m.streams = append(m.streams, s)
	return s
}

// SetOverlapSink directs per-copy overlap credits (CPU base address of
// the copied host range, overlapped bytes) to fn; core.Run wires it to
// the communication ledger. nil detaches.
func (m *Machine) SetOverlapSink(fn func(hostBase uint64, overlapped int64)) {
	m.overlapSink = fn
}

// GPUReadyEvent returns an event that completes when every kernel
// launched so far has finished — the handle an async copy passes as a
// wait when it must not race the compute timeline.
func (m *Machine) GPUReadyEvent() Event { return Event{t: m.gpuReady} }

// CopyHtoDAsync issues an asynchronous host-to-device copy on stream s.
// The bytes move immediately (so program semantics match the synchronous
// verb exactly); the DMA occupies the stream's lane starting after the
// stream's previous copy and every wait event. It does not wait for
// in-flight kernels: the runtime only uploads to freshly allocated or
// explicitly event-ordered device memory.
func (m *Machine) CopyHtoDAsync(s *Stream, dst, src uint64, n int64, waits ...Event) (Event, error) {
	if m.plan != nil {
		if de := m.DecideFault(faultinject.VerbHtoD, m.faultUnitAt(src)); de != nil {
			return Event{}, de
		}
	}
	data, err := m.ReadBytes(src, n)
	if err != nil {
		return Event{}, err
	}
	if err := m.WriteBytes(dst, data); err != nil {
		return Event{}, err
	}
	ev := m.issueCopy(s, trace.KindHtoD, dst, src, n, waits)
	m.stats.BytesHtoD += n
	m.stats.NumHtoD++
	return ev, nil
}

// CopyDtoHAsync issues an asynchronous device-to-host copy on stream s.
// It implicitly waits for in-flight kernels (the device data must be
// final) in addition to the stream's occupancy and the explicit waits.
// The host bytes are updated immediately, so a later host read is always
// correct; the machine only charges the wait when the host actually
// touches the flushing unit before the DMA completes (WaitHostUnit).
func (m *Machine) CopyDtoHAsync(s *Stream, dst, src uint64, n int64, waits ...Event) (Event, error) {
	if m.plan != nil {
		if de := m.DecideFault(faultinject.VerbDtoH, m.faultUnitAt(dst)); de != nil {
			return Event{}, de
		}
	}
	data, err := m.ReadBytes(src, n)
	if err != nil {
		return Event{}, err
	}
	if err := m.WriteBytes(dst, data); err != nil {
		return Event{}, err
	}
	ev := m.issueCopy(s, trace.KindDtoH, dst, src, n, waits)
	m.stats.BytesDtoH += n
	m.stats.NumDtoH++
	return ev, nil
}

// issueCopy charges one asynchronous DMA: spans (issue instant on the CPU
// lane, copy interval on the stream lane, linked by a flow id), byte
// histograms, CommTime, stream occupancy, and the pending-op record that
// later resolves into overlap credit.
func (m *Machine) issueCopy(s *Stream, kind trace.Kind, dst, src uint64, n int64, waits []Event) Event {
	m.flushCPUSpan()
	start := m.cpuTime
	if s.ready > start {
		start = s.ready
	}
	if kind == trace.KindDtoH && m.gpuReady > start {
		start = m.gpuReady
	}
	for _, e := range waits {
		if e.t > start {
			start = e.t
		}
	}
	d := m.Cost.TransferLat + float64(n)*m.Cost.TransferPerB
	end := start + d
	hostBase, devBase := src, dst
	if kind == trace.KindDtoH {
		hostBase, devBase = dst, src
	}
	m.nextFlow++
	flow := m.nextFlow
	if m.tr != nil {
		unit := m.unitNameAt(hostBase)
		m.tr.Emit(trace.Span{
			Kind: trace.KindIssue, Lane: trace.LaneCPU,
			Name:  "issue " + kind.String() + " " + s.name,
			Start: m.cpuTime, End: m.cpuTime, Bytes: n, Unit: unit, Flow: flow,
		})
		m.tr.Emit(trace.Span{
			Kind: kind, Lane: s.lane, Name: s.name,
			Start: start, End: end, Bytes: n, Unit: unit, Flow: flow,
		})
	}
	if kind == trace.KindHtoD {
		m.met.htodBytes.Observe(float64(n))
	} else {
		m.met.dtohBytes.Observe(float64(n))
		// A pending host-bound flush: invalidate the interpreter's inline
		// caches so the next host access to any unit re-resolves through
		// the machine and charges WaitHostUnit if it touches this one.
		m.gen++
	}
	m.stats.CommTime += d
	s.ready = end
	m.pending = append(m.pending, asyncOp{
		kind: kind, bytes: n, start: start, end: end,
		hostBase: hostBase, hostEnd: hostBase + uint64(n),
		devBase: devBase, devEnd: devBase + uint64(n),
	})
	m.met.streamDepth.Observe(float64(len(m.pending)))
	return Event{t: end, flow: flow}
}

// retire credits the portion of one finished copy that ran before the
// observer time tObs as overlapped communication.
func (m *Machine) retire(op asyncOp, tObs float64) {
	d := op.end - op.start
	ov := tObs - op.start
	if ov > d {
		ov = d
	}
	if d <= 0 || ov <= 0 {
		return
	}
	ob := int64(float64(op.bytes) * ov / d)
	if ob <= 0 {
		return
	}
	m.stats.OverlappedBytes += ob
	m.met.overlappedBytes.Add(ob)
	if m.overlapSink != nil {
		m.overlapSink(op.hostBase, ob)
	}
}

// resolvePending retires every pending copy that completes by lim,
// observing overlap relative to tObs (the time useful work had reached
// when the synchronization happened). Pending order is issue order, so
// resolution is deterministic.
func (m *Machine) resolvePending(lim, tObs float64) {
	if len(m.pending) == 0 {
		return
	}
	kept := m.pending[:0]
	for _, op := range m.pending {
		if op.end <= lim {
			m.retire(op, tObs)
		} else {
			kept = append(kept, op)
		}
	}
	m.pending = kept
}

// stallTo advances the CPU clock to t as GPU-wait stall time (no-op when
// t is in the past).
func (m *Machine) stallTo(t float64) {
	if t <= m.cpuTime {
		return
	}
	m.flushCPUSpan()
	m.emit(trace.KindStall, m.cpuTime, t, "sync", 0, "")
	m.stats.StallTime += t - m.cpuTime
	m.cpuTime = t
}

// WaitEvent blocks the CPU until the event completes (cuEventSynchronize).
func (m *Machine) WaitEvent(e Event) {
	m.resolvePending(e.t, m.cpuTime)
	m.stallTo(e.t)
}

// SyncStreams drains every pending stream copy, stalling the CPU to the
// last completion. Sync calls it; the runtime also calls it directly
// before degrading the device so no async copy is in flight when the
// escalation ladder takes over.
func (m *Machine) SyncStreams() {
	if len(m.pending) == 0 {
		return
	}
	target := m.cpuTime
	for _, op := range m.pending {
		if op.end > target {
			target = op.end
		}
	}
	m.resolvePending(math.Inf(1), m.cpuTime)
	m.stallTo(target)
}

// HostPendingCount reports how many device-to-host stream copies are
// still in flight. The interpreter checks it (cheaply, after an
// inline-cache miss) to decide whether a host access needs WaitHostUnit.
func (m *Machine) HostPendingCount() int {
	n := 0
	for _, op := range m.pending {
		if op.kind == trace.KindDtoH {
			n++
		}
	}
	return n
}

// PendingCopies reports how many stream copies are in flight (tests).
func (m *Machine) PendingCopies() int { return len(m.pending) }

// WaitHostUnit blocks the CPU until every in-flight device-to-host copy
// whose destination range contains addr has completed. Host code that
// touches a unit mid-flush pays the DMA wait, exactly like a pagelocked
// buffer consumed before cuStreamSynchronize.
func (m *Machine) WaitHostUnit(addr uint64) {
	target := m.cpuTime
	found := false
	for _, op := range m.pending {
		if op.kind == trace.KindDtoH && addr >= op.hostBase && addr < op.hostEnd {
			found = true
			if op.end > target {
				target = op.end
			}
		}
	}
	if !found {
		return
	}
	m.resolvePending(target, m.cpuTime)
	m.stallTo(target)
}

// waitRange blocks until every pending copy intersecting [base, base+size)
// in the given space has completed; Free calls it so memory is never
// reclaimed under an in-flight DMA.
func (m *Machine) waitRange(space Space, base uint64, size int64) {
	end := base + uint64(size)
	target := m.cpuTime
	found := false
	for _, op := range m.pending {
		lo, hi := op.hostBase, op.hostEnd
		if space == GPU {
			lo, hi = op.devBase, op.devEnd
		}
		if base < hi && lo < end {
			found = true
			if op.end > target {
				target = op.end
			}
		}
	}
	if !found {
		return
	}
	m.resolvePending(target, m.cpuTime)
	m.stallTo(target)
}
