// Per-tenant device-memory quotas: a MemGovernor arbitrates device
// allocations across concurrently running machines, so one tenant of a
// multi-tenant service cannot claim the whole device. The governor sits
// under AllocDevice — the fallible allocator the resilient runtime
// already knows how to handle — so a quota denial looks exactly like
// capacity OOM: the runtime evicts the tenant's own cached units first
// and degrades that run to lossless CPU fallback if the working set
// truly does not fit. Other tenants' machines never observe any of it.
package machine

import (
	"fmt"
	"sort"
	"sync"
)

// MemGovernor arbitrates device-memory reservations across machines.
// Reserve is called before a device allocation is created (with the
// aligned size the machine will charge) and may deny it; Release is
// called when the allocation is freed. Implementations must be safe for
// concurrent use: one governor typically backs many machines.
type MemGovernor interface {
	Reserve(bytes int64) error
	Release(bytes int64)
}

// SetMemGovernor attaches a governor to the machine (nil detaches).
// Only AllocDevice consults it, mirroring SetGPUCapacity: plain Alloc
// stays infallible for code predating the fault model.
func (m *Machine) SetMemGovernor(g MemGovernor) {
	m.gov = g
	if g != nil && m.govBytes == nil {
		m.govBytes = make(map[uint64]int64)
	}
}

// QuotaPool tracks per-tenant device-memory quotas and live usage
// across any number of concurrently running machines. Governor hands
// out the per-tenant view a run attaches via SetMemGovernor.
type QuotaPool struct {
	mu       sync.Mutex
	def      int64 // default per-tenant quota (0 = unlimited)
	quota    map[string]int64
	used     map[string]int64
	peak     map[string]int64
	denials  map[string]int64
	reserves map[string]int64
}

// NewQuotaPool returns a pool whose tenants default to defaultQuota
// bytes of device memory each (0 = unlimited).
func NewQuotaPool(defaultQuota int64) *QuotaPool {
	return &QuotaPool{
		def:      defaultQuota,
		quota:    make(map[string]int64),
		used:     make(map[string]int64),
		peak:     make(map[string]int64),
		denials:  make(map[string]int64),
		reserves: make(map[string]int64),
	}
}

// SetQuota overrides one tenant's quota (0 = unlimited).
func (p *QuotaPool) SetQuota(tenant string, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.quota[tenant] = bytes
}

// Quota returns the tenant's effective quota (0 = unlimited).
func (p *QuotaPool) Quota(tenant string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quotaLocked(tenant)
}

func (p *QuotaPool) quotaLocked(tenant string) int64 {
	if q, ok := p.quota[tenant]; ok {
		return q
	}
	return p.def
}

// Usage reports the tenant's live reserved bytes, high-water mark, and
// denied reservation count.
func (p *QuotaPool) Usage(tenant string) (used, peak, denials int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used[tenant], p.peak[tenant], p.denials[tenant]
}

// Tenants lists every tenant the pool has seen, sorted.
func (p *QuotaPool) Tenants() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := make(map[string]bool, len(p.used)+len(p.quota))
	for t := range p.used {
		seen[t] = true
	}
	for t := range p.quota {
		seen[t] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Governor returns the tenant's MemGovernor view of the pool. All runs
// of one tenant share one ledger: concurrent runs compete for the same
// quota, and the pool aggregates their usage.
func (p *QuotaPool) Governor(tenant string) MemGovernor {
	return &tenantGov{p: p, tenant: tenant}
}

type tenantGov struct {
	p      *QuotaPool
	tenant string
}

// Reserve charges n bytes to the tenant, denying the reservation when
// it would push the tenant over quota. The error is advisory text: the
// machine wraps it into a capacity-style DeviceError, which the
// resilient runtime handles with its evict/degrade ladder.
func (g *tenantGov) Reserve(n int64) error {
	p := g.p
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.quotaLocked(g.tenant)
	if q > 0 && p.used[g.tenant]+n > q {
		p.denials[g.tenant]++
		return fmt.Errorf("tenant %q over device-memory quota: %d bytes reserved of %d, need %d",
			g.tenant, p.used[g.tenant], q, n)
	}
	p.used[g.tenant] += n
	p.reserves[g.tenant]++
	if p.used[g.tenant] > p.peak[g.tenant] {
		p.peak[g.tenant] = p.used[g.tenant]
	}
	return nil
}

// Release returns n bytes to the tenant's quota, clamping at zero so a
// stray release can never manufacture headroom.
func (g *tenantGov) Release(n int64) {
	p := g.p
	p.mu.Lock()
	defer p.mu.Unlock()
	p.used[g.tenant] -= n
	if p.used[g.tenant] < 0 {
		p.used[g.tenant] = 0
	}
}
