package machine

import (
	"errors"
	"testing"

	"cgcm/internal/faultinject"
)

func newFaultMachine() *Machine { return New(DefaultCostModel()) }

func TestGPUMemAccounting(t *testing.T) {
	m := newFaultMachine()
	if m.GPUMemUsed() != 0 || m.GPUMemPeak() != 0 {
		t.Fatalf("fresh machine reports used=%d peak=%d", m.GPUMemUsed(), m.GPUMemPeak())
	}
	a := m.Alloc(GPU, 100, "a") // aligned up
	used1 := m.GPUMemUsed()
	if used1 < 100 {
		t.Fatalf("used %d < allocation size 100", used1)
	}
	b := m.Alloc(GPU, 4096, "b")
	used2 := m.GPUMemUsed()
	if used2 <= used1 {
		t.Fatalf("second allocation did not grow used: %d -> %d", used1, used2)
	}
	// CPU allocations never count against device memory.
	m.Alloc(CPU, 1<<20, "host")
	if m.GPUMemUsed() != used2 {
		t.Errorf("CPU allocation changed GPU used: %d != %d", m.GPUMemUsed(), used2)
	}
	if err := m.Free(GPU, a); err != nil {
		t.Fatal(err)
	}
	if m.GPUMemUsed() != used2-used1 {
		t.Errorf("free did not return bytes: used %d, want %d", m.GPUMemUsed(), used2-used1)
	}
	if m.GPUMemPeak() != used2 {
		t.Errorf("peak %d, want high-water mark %d", m.GPUMemPeak(), used2)
	}
	if err := m.Free(GPU, b); err != nil {
		t.Fatal(err)
	}
	if m.GPUMemUsed() != 0 {
		t.Errorf("all freed but used = %d", m.GPUMemUsed())
	}
}

func TestAllocDeviceCapacityOOM(t *testing.T) {
	m := newFaultMachine()
	m.SetGPUCapacity(8192)
	if _, err := m.AllocDevice(4096, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocDevice(4096, "b"); err != nil {
		t.Fatal(err)
	}
	_, err := m.AllocDevice(1, "c")
	if err == nil {
		t.Fatal("allocation past capacity succeeded")
	}
	if !errors.Is(err, faultinject.ErrOOM) {
		t.Errorf("capacity OOM does not match ErrOOM: %v", err)
	}
	var de *faultinject.DeviceError
	if !errors.As(err, &de) {
		t.Fatalf("capacity OOM is not a *DeviceError: %T", err)
	}
	if de.Injected {
		t.Error("genuine capacity OOM reported as injected")
	}
	if de.Unit != "c" {
		t.Errorf("OOM unit %q, want %q", de.Unit, "c")
	}
	if de.Transient {
		t.Error("capacity OOM reported transient; retry without eviction cannot succeed")
	}
}

func TestAllocDeviceUnlimitedByDefault(t *testing.T) {
	m := newFaultMachine()
	for i := 0; i < 64; i++ {
		if _, err := m.AllocDevice(1<<20, "big"); err != nil {
			t.Fatalf("allocation %d failed on unlimited device: %v", i, err)
		}
	}
}

func TestDecideFaultChargesTimeAndCounts(t *testing.T) {
	m := newFaultMachine()
	spec, err := faultinject.ParseSpec("htod@0+2")
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultPlan(spec.NewPlan())
	before := m.Now()
	if de := m.DecideFault(faultinject.VerbHtoD, "u"); de == nil {
		t.Fatal("call 0 listed in spec did not fault")
	} else {
		if !de.Transient || !de.Injected {
			t.Errorf("at-index fault should be transient+injected: %+v", de)
		}
		if !errors.Is(de, faultinject.ErrTransfer) {
			t.Errorf("htod fault does not match ErrTransfer: %v", de)
		}
	}
	if m.Now() <= before {
		t.Error("injected fault charged no driver-call time")
	}
	if de := m.DecideFault(faultinject.VerbHtoD, "u"); de != nil {
		t.Errorf("call 1 not in spec faulted: %v", de)
	}
	if de := m.DecideFault(faultinject.VerbHtoD, "u"); de == nil {
		t.Error("call 2 listed in spec did not fault")
	}
	if got := m.Stats().InjectedFaults; got != 2 {
		t.Errorf("InjectedFaults = %d, want 2", got)
	}
}

func TestInjectedAllocFaultBeforeCapacityCheck(t *testing.T) {
	m := newFaultMachine()
	spec, err := faultinject.ParseSpec("fail=alloc@0")
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultPlan(spec.NewPlan())
	_, aerr := m.AllocDevice(16, "x")
	if aerr == nil {
		t.Fatal("persistently failed allocator succeeded")
	}
	var de *faultinject.DeviceError
	if !errors.As(aerr, &de) || !de.Injected || de.Transient {
		t.Errorf("want persistent injected alloc fault, got %v", aerr)
	}
	if m.GPUMemUsed() != 0 {
		t.Errorf("failed allocation leaked %d bytes", m.GPUMemUsed())
	}
}

func TestPenaltyAdvancesWallNotCompute(t *testing.T) {
	m := newFaultMachine()
	before := m.Stats()
	m.Penalty(0.001)
	after := m.Stats()
	if after.PenaltyTime-before.PenaltyTime != 0.001 {
		t.Errorf("PenaltyTime grew by %g, want 0.001", after.PenaltyTime-before.PenaltyTime)
	}
	if after.CPUTime != before.CPUTime {
		t.Error("penalty charged compute time")
	}
	if m.Now() != 0.001 {
		t.Errorf("penalty did not advance the clock: %g", m.Now())
	}
	m.Penalty(0) // no-op, must not panic or move time
	if m.Now() != 0.001 {
		t.Error("zero penalty moved the clock")
	}
}

func TestRescueCopyDtoHIsSlowButCounted(t *testing.T) {
	m := newFaultMachine()
	host := m.Alloc(CPU, 4096, "host")
	dev := m.Alloc(GPU, 4096, "dev")
	for i := int64(0); i < 4096/8; i++ {
		if err := m.Store(dev+uint64(i*8), 8, uint64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	// Time a normal copy of the same size on a second machine to compare.
	m2 := newFaultMachine()
	h2 := m2.Alloc(CPU, 4096, "host")
	d2 := m2.Alloc(GPU, 4096, "dev")
	if err := m2.CopyDtoH(h2, d2, 4096); err != nil {
		t.Fatal(err)
	}
	normal := m2.Now()

	if err := m.RescueCopyDtoH(host, dev, 4096); err != nil {
		t.Fatal(err)
	}
	if m.Now() <= normal {
		t.Errorf("rescue copy (%.9f) not slower than normal DtoH (%.9f)", m.Now(), normal)
	}
	st := m.Stats()
	if st.RescueCopies != 1 || st.NumDtoH != 1 || st.BytesDtoH != 4096 {
		t.Errorf("rescue accounting wrong: %+v", st)
	}
	// Data must have landed intact.
	for i := int64(0); i < 4096/8; i++ {
		v, err := m.Load(host+uint64(i*8), 8)
		if err != nil || v != uint64(i)*3 {
			t.Fatalf("rescued byte run corrupt at %d: %d, %v", i, v, err)
		}
	}
}

func TestRescueCopyIgnoresFaultPlan(t *testing.T) {
	m := newFaultMachine()
	spec, err := faultinject.ParseSpec("fail=dtoh@0")
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultPlan(spec.NewPlan())
	host := m.Alloc(CPU, 64, "host")
	dev := m.Alloc(GPU, 64, "dev")
	if err := m.CopyDtoH(host, dev, 64); err == nil {
		t.Fatal("normal DtoH should fail under fail=dtoh@0")
	}
	if err := m.RescueCopyDtoH(host, dev, 64); err != nil {
		t.Errorf("rescue channel consulted the fault plan: %v", err)
	}
}

func TestRunKernelOnCPUAccounting(t *testing.T) {
	m := newFaultMachine()
	m.RunKernelOnCPUAt("k", 3, 1000)
	st := m.Stats()
	if st.FallbackKernels != 1 || st.FallbackOps != 1000 {
		t.Errorf("fallback accounting: kernels=%d ops=%d", st.FallbackKernels, st.FallbackOps)
	}
	if st.NumKernels != 0 {
		t.Error("CPU-fallback execution counted as a GPU kernel")
	}
	if st.CPUOps != 1000 {
		t.Errorf("fallback ops not charged to CPU: %d", st.CPUOps)
	}
}
