package machine

import (
	"errors"
	"testing"

	"cgcm/internal/faultinject"
)

func TestQuotaPoolReserveDenyRelease(t *testing.T) {
	p := NewQuotaPool(100)
	g := p.Governor("a")
	if err := g.Reserve(60); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	if err := g.Reserve(60); err == nil {
		t.Fatal("reserve beyond quota succeeded")
	}
	used, peak, denials := p.Usage("a")
	if used != 60 || peak != 60 || denials != 1 {
		t.Fatalf("usage = (%d, %d, %d), want (60, 60, 1)", used, peak, denials)
	}
	g.Release(60)
	if err := g.Reserve(100); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	used, peak, _ = p.Usage("a")
	if used != 100 || peak != 100 {
		t.Fatalf("usage = (%d, %d), want (100, 100)", used, peak)
	}
}

func TestQuotaPoolPerTenantOverrideAndIsolation(t *testing.T) {
	p := NewQuotaPool(50)
	p.SetQuota("big", 1000)
	if err := p.Governor("big").Reserve(500); err != nil {
		t.Fatalf("override tenant: %v", err)
	}
	// Default-quota tenant is unaffected by big's usage.
	if err := p.Governor("small").Reserve(50); err != nil {
		t.Fatalf("default tenant at exactly its quota: %v", err)
	}
	if err := p.Governor("small").Reserve(1); err == nil {
		t.Fatal("default tenant exceeded its quota")
	}
	if q := p.Quota("big"); q != 1000 {
		t.Fatalf("Quota(big) = %d, want 1000", q)
	}
	if q := p.Quota("small"); q != 50 {
		t.Fatalf("Quota(small) = %d, want 50", q)
	}
}

func TestQuotaPoolUnlimited(t *testing.T) {
	p := NewQuotaPool(0)
	if err := p.Governor("any").Reserve(1 << 40); err != nil {
		t.Fatalf("unlimited pool denied: %v", err)
	}
}

func TestQuotaPoolReleaseClamps(t *testing.T) {
	p := NewQuotaPool(10)
	g := p.Governor("a")
	g.Release(99) // spurious release must not create negative usage
	if err := g.Reserve(10); err != nil {
		t.Fatalf("reserve after spurious release: %v", err)
	}
	used, _, _ := p.Usage("a")
	if used != 10 {
		t.Fatalf("used = %d, want 10", used)
	}
}

// TestAllocDeviceGovernorDeny: a quota denial surfaces as a
// non-injected, non-transient alloc DeviceError — exactly the shape the
// resilient runtime's evict-then-degrade ladder consumes.
func TestAllocDeviceGovernorDeny(t *testing.T) {
	m := New(DefaultCostModel())
	p := NewQuotaPool(64)
	m.SetMemGovernor(p.Governor("t"))

	if _, err := m.AllocDevice(32, "u1"); err != nil {
		t.Fatalf("within quota: %v", err)
	}
	_, err := m.AllocDevice(64, "u2")
	if err == nil {
		t.Fatal("over-quota alloc succeeded")
	}
	var derr *faultinject.DeviceError
	if !errors.As(err, &derr) {
		t.Fatalf("error %T is not a DeviceError", err)
	}
	if derr.Injected || derr.Transient || derr.Verb != faultinject.VerbAlloc {
		t.Fatalf("denial shape = %+v; want non-injected, non-transient, alloc", derr)
	}
}

// TestFreeReleasesGovernorCharge: freeing a device allocation returns
// its charged bytes to the tenant, so quota tracks live usage.
func TestFreeReleasesGovernorCharge(t *testing.T) {
	m := New(DefaultCostModel())
	p := NewQuotaPool(64)
	m.SetMemGovernor(p.Governor("t"))

	base, err := m.AllocDevice(64, "u1")
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	used, _, _ := p.Usage("t")
	if used != 64 {
		t.Fatalf("used = %d, want 64", used)
	}
	m.Free(GPU, base)
	used, peak, _ := p.Usage("t")
	if used != 0 || peak != 64 {
		t.Fatalf("after free: used = %d peak = %d, want 0/64", used, peak)
	}
	if _, err := m.AllocDevice(64, "u2"); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

// TestAllocDeviceChargesAlignedSize: the governor charge matches the
// machine's aligned allocation size, so Release always pairs exactly.
func TestAllocDeviceChargesAlignedSize(t *testing.T) {
	m := New(DefaultCostModel())
	p := NewQuotaPool(0)
	m.SetMemGovernor(p.Governor("t"))
	if _, err := m.AllocDevice(1, "u"); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	used, _, _ := p.Usage("t")
	if used != 16 { // align() rounds to 16
		t.Fatalf("charged %d bytes for a 1-byte alloc, want the aligned 16", used)
	}
}
