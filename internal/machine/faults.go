// Device fault model: finite GPU memory and injected failures.
//
// The real CGCM runtime ran against a CUDA driver where cuMemAlloc can
// return OOM and transfers can fail. This file makes the simulated device
// fallible in the same ways, deterministically: a configurable memory
// capacity turns AllocDevice into a partial function, and an attached
// faultinject.Plan injects typed faults on allocation, transfers, and
// kernel launches. All fault decisions happen on the goroutine driving
// the machine (device calls are root-goroutine-only), so a fault schedule
// is a pure function of the call sequence — independent of the kernel
// engine's worker count.
package machine

import (
	"fmt"

	"cgcm/internal/faultinject"
	"cgcm/internal/trace"
)

// rescueSlowdown is the cost multiplier of the slow reliable transfer
// channel used by RescueCopyDtoH (think: staged cuMemcpy through pinned
// bounce buffers with per-chunk acknowledgment).
const rescueSlowdown = 8.0

// SetGPUCapacity limits device memory to bytes (0 = unlimited). Only
// AllocDevice enforces the limit; plain Alloc stays infallible so code
// that predates the fault model keeps working.
func (m *Machine) SetGPUCapacity(bytes int64) { m.capacity = bytes }

// SetFaultPlan attaches a fault-injection plan (nil detaches).
func (m *Machine) SetFaultPlan(p *faultinject.Plan) { m.plan = p }

// FaultPlan returns the attached plan, if any.
func (m *Machine) FaultPlan() *faultinject.Plan { return m.plan }

// GPUMemCapacity returns the configured device-memory limit (0 = unlimited).
func (m *Machine) GPUMemCapacity() int64 { return m.capacity }

// GPUMemUsed returns the current aligned GPU-space segment bytes.
func (m *Machine) GPUMemUsed() int64 { return m.gpuUsed }

// GPUMemPeak returns the high-water mark of GPUMemUsed.
func (m *Machine) GPUMemPeak() int64 { return m.gpuPeak }

// faultUnitAt names the allocation unit containing addr for fault
// tagging; unlike unitNameAt it does not require a tracer.
func (m *Machine) faultUnitAt(addr uint64) string {
	if seg := m.FindSegment(addr); seg != nil {
		return seg.Name
	}
	return ""
}

// DecideFault consults the fault plan for one call of verb and returns
// the injected *DeviceError, or nil when the call proceeds. A fired
// fault charges the CPU timeline for the failed driver call (a failed
// DMA still pays its latency; a failed launch still pays the enqueue
// cost) and emits an instant fault span.
func (m *Machine) DecideFault(v faultinject.Verb, unit string) *faultinject.DeviceError {
	fault, call, persistent := m.plan.Decide(v, unit)
	if !fault {
		return nil
	}
	m.flushCPUSpan()
	var cost float64
	switch v {
	case faultinject.VerbAlloc:
		cost = m.Cost.AllocGPU
	case faultinject.VerbHtoD, faultinject.VerbDtoH:
		cost = m.Cost.TransferLat
	case faultinject.VerbLaunch:
		cost = m.Cost.LaunchCPU
	}
	start := m.cpuTime
	m.cpuTime += cost
	m.stats.InjectedFaults++
	m.met.faultsInjected.Inc()
	de := &faultinject.DeviceError{
		Verb: v, Unit: unit, Call: call,
		Transient: !persistent, Injected: true,
		Msg: "injected by fault plan",
	}
	if m.tr != nil {
		m.tr.Emit(trace.Span{
			Kind: trace.KindFault, Lane: trace.LaneRT,
			Name:  fmt.Sprintf("%s fault #%d", v, call),
			Start: start, End: m.cpuTime, Unit: unit,
		})
	}
	return de
}

// AllocDevice is the fallible device allocator: it consults the fault
// plan, enforces the capacity limit, and otherwise allocates a GPU-space
// segment. Unlike Alloc it does not charge cuMemAlloc time — callers
// charge ChargeAllocGPU on success, matching the runtime's existing
// accounting.
func (m *Machine) AllocDevice(size int64, name string) (uint64, error) {
	if size <= 0 {
		size = 1
	}
	if m.plan != nil {
		if de := m.DecideFault(faultinject.VerbAlloc, name); de != nil {
			return 0, de
		}
	}
	need := int64(align(uint64(size)))
	if m.capacity > 0 && m.gpuUsed+need > m.capacity {
		return 0, &faultinject.DeviceError{
			Verb: faultinject.VerbAlloc, Unit: name,
			Msg: fmt.Sprintf("device memory exhausted: %d bytes used of %d, need %d",
				m.gpuUsed, m.capacity, need),
		}
	}
	if m.gov != nil {
		if gerr := m.gov.Reserve(need); gerr != nil {
			// A quota denial is shaped like capacity OOM (non-injected,
			// non-transient), so the resilient runtime responds the same
			// way: evict this run's own cached units, then degrade to CPU
			// fallback. Other tenants' machines are untouched.
			return 0, &faultinject.DeviceError{
				Verb: faultinject.VerbAlloc, Unit: name,
				Msg: gerr.Error(),
			}
		}
	}
	base := m.Alloc(GPU, size, name)
	if m.gov != nil {
		m.govBytes[base] = need
	}
	return base, nil
}

// Penalty advances the CPU timeline by d seconds of non-compute overhead
// (retry backoff). The time counts toward Wall and PenaltyTime but not
// CPUTime, so compute accounting stays honest.
func (m *Machine) Penalty(d float64) {
	if d <= 0 {
		return
	}
	m.flushCPUSpan()
	start := m.cpuTime
	m.cpuTime += d
	m.stats.PenaltyTime += d
	if m.tr != nil {
		m.tr.Emit(trace.Span{
			Kind: trace.KindStall, Lane: trace.LaneCPU,
			Name: "retry backoff", Start: start, End: m.cpuTime,
		})
	}
}

// RescueCopyDtoH copies n device bytes to the host over the driver's
// slow reliable channel. It never consults the fault plan and always
// succeeds (given valid addresses), at rescueSlowdown times the normal
// transfer cost — the escape hatch that lets the runtime flush dirty
// data off a dying device, making CPU-fallback degradation lossless.
func (m *Machine) RescueCopyDtoH(dst, src uint64, n int64) error {
	data, err := m.ReadBytes(src, n)
	if err != nil {
		return err
	}
	if err := m.WriteBytes(dst, data); err != nil {
		return err
	}
	m.flushCPUSpan()
	if m.gpuReady > m.cpuTime {
		m.emit(trace.KindStall, m.cpuTime, m.gpuReady, "sync", 0, "")
		m.stats.StallTime += m.gpuReady - m.cpuTime
		m.cpuTime = m.gpuReady
	}
	d := (m.Cost.TransferLat + float64(n)*m.Cost.TransferPerB) * rescueSlowdown
	unit := m.faultUnitAt(dst)
	if m.tr != nil {
		m.tr.Emit(trace.Span{
			Kind: trace.KindDtoH, Lane: trace.LaneXfer, Name: "rescue",
			Start: m.cpuTime, End: m.cpuTime + d, Bytes: n, Unit: unit,
		})
	}
	m.met.dtohBytes.Observe(float64(n))
	m.cpuTime += d
	m.gpuReady = m.cpuTime
	m.stats.CommTime += d
	m.stats.PenaltyTime += d * (1 - 1/rescueSlowdown)
	m.stats.BytesDtoH += n
	m.stats.NumDtoH++
	m.stats.RescueCopies++
	return nil
}

// RunKernelOnCPUAt charges a degraded (CPU-fallback) kernel execution:
// totalOps scalar operations run sequentially on the host, with no
// launch overhead and no GPU involvement. The span is emitted as
// KindFallback so degraded schedules are visually distinct.
func (m *Machine) RunKernelOnCPUAt(name string, line int, totalOps int64) {
	m.flushCPUSpan()
	d := float64(totalOps) * m.Cost.CPUOp
	start := m.cpuTime
	m.cpuTime += d
	m.stats.CPUTime += d
	m.stats.CPUOps += totalOps
	m.stats.FallbackKernels++
	m.stats.FallbackOps += totalOps
	m.met.fallbackKernels.Inc()
	if m.tr != nil {
		m.tr.Emit(trace.Span{
			Kind: trace.KindFallback, Lane: trace.LaneCPU, Name: name,
			Start: start, End: m.cpuTime, Line: line,
		})
	}
}
