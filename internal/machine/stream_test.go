package machine

import (
	"testing"

	"cgcm/internal/trace"
)

// newTestMachine allocates a machine with one host and one device
// buffer of n bytes, returning their base addresses.
func newTestMachine(n int64) (m *Machine, host, dev uint64) {
	m = New(DefaultCostModel())
	host = m.Alloc(CPU, n, "host")
	dev = m.Alloc(GPU, n, "dev")
	return m, host, dev
}

// TestAsyncCopyDoesNotStallCPU: the synchronous verb stalls the CPU for
// the full DMA; the async verb returns with the CPU clock unchanged and
// the copy pending on the stream.
func TestAsyncCopyDoesNotStallCPU(t *testing.T) {
	const n = 4096
	m, host, dev := newTestMachine(n)
	s := m.NewStream("h2d")
	before := m.Now()
	ev, err := m.CopyHtoDAsync(s, dev, host, n)
	if err != nil {
		t.Fatal(err)
	}
	if m.Now() != before {
		t.Errorf("async copy advanced the CPU clock: %g -> %g", before, m.Now())
	}
	if m.PendingCopies() != 1 {
		t.Errorf("pending copies = %d, want 1", m.PendingCopies())
	}
	d := m.Cost.TransferLat + float64(n)*m.Cost.TransferPerB
	if got := ev.Time(); got != before+d {
		t.Errorf("event time = %g, want %g", got, before+d)
	}

	// The synchronous verb on a fresh machine pays the same DMA inline.
	m2, host2, dev2 := newTestMachine(n)
	if err := m2.CopyHtoD(dev2, host2, n); err != nil {
		t.Fatal(err)
	}
	if m2.Now() < d {
		t.Errorf("sync copy did not pay the DMA inline: clock %g < %g", m2.Now(), d)
	}
}

// TestStreamOccupancy: copies on one stream serialize; copies on two
// streams run concurrently.
func TestStreamOccupancy(t *testing.T) {
	const n = 1024
	m, host, dev := newTestMachine(4 * n)
	s := m.NewStream("h2d")
	e1, err := m.CopyHtoDAsync(s, dev, host, n)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m.CopyHtoDAsync(s, dev+n, host+n, n)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Cost.TransferLat + float64(n)*m.Cost.TransferPerB
	if got, want := e2.Time()-e1.Time(), d; got != want {
		t.Errorf("same-stream copies overlap: gap %g, want %g", got, want)
	}
	s2 := m.NewStream("h2d2")
	e3, err := m.CopyHtoDAsync(s2, dev+2*n, host+2*n, n)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Time() >= e2.Time() {
		t.Errorf("second stream serialized behind the first: %g >= %g", e3.Time(), e2.Time())
	}
}

// TestEventOrdering: a wait event delays the dependent copy's start to
// the event's completion, exactly like cuStreamWaitEvent.
func TestEventOrdering(t *testing.T) {
	const n = 1024
	m, host, dev := newTestMachine(2 * n)
	a := m.NewStream("a")
	b := m.NewStream("b")
	e1, err := m.CopyHtoDAsync(a, dev, host, n)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m.CopyHtoDAsync(b, dev+n, host+n, n, e1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Cost.TransferLat + float64(n)*m.Cost.TransferPerB
	if got, want := e2.Time(), e1.Time()+d; got != want {
		t.Errorf("dependent copy completes at %g, want %g (after its wait)", got, want)
	}
	// The zero Event waits for nothing.
	e3, err := m.CopyHtoDAsync(m.NewStream("c"), dev, host, n, Event{})
	if err != nil {
		t.Fatal(err)
	}
	if e3.Time() != d {
		t.Errorf("zero-event wait delayed the copy: %g, want %g", e3.Time(), d)
	}
}

// TestAsyncBytesMoveEagerly: the data lands at issue time — a host read
// after an async DtoH sees the device bytes even before any sync point.
func TestAsyncBytesMoveEagerly(t *testing.T) {
	const n = 8
	m, host, dev := newTestMachine(n)
	if err := m.Store(dev, 8, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	s := m.NewStream("d2h")
	if _, err := m.CopyDtoHAsync(s, host, dev, n); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load(host, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xdeadbeef {
		t.Errorf("host read mid-flight = %#x, want 0xdeadbeef", got)
	}
}

// TestWaitHostUnit: a host access to a flushing unit pays the residual
// DMA wait; an access to an unrelated address pays nothing.
func TestWaitHostUnit(t *testing.T) {
	const n = 4096
	m, host, dev := newTestMachine(n)
	other := m.Alloc(CPU, 64, "other")
	s := m.NewStream("d2h")
	ev, err := m.CopyDtoHAsync(s, host, dev, n)
	if err != nil {
		t.Fatal(err)
	}
	m.WaitHostUnit(other) // unrelated: no stall
	if m.Now() != 0 {
		t.Errorf("unrelated host access stalled the CPU to %g", m.Now())
	}
	m.WaitHostUnit(host + 128) // inside the flushing range: stall to completion
	if m.Now() != ev.Time() {
		t.Errorf("host access to flushing unit stalled to %g, want %g", m.Now(), ev.Time())
	}
	if m.HostPendingCount() != 0 {
		t.Errorf("flush still pending after WaitHostUnit")
	}
}

// TestSyncDrainsStreams: Sync waits for the last pending copy and
// credits its pre-sync portion as overlapped bytes.
func TestSyncDrainsStreams(t *testing.T) {
	const n = 4096
	m, host, dev := newTestMachine(n)
	s := m.NewStream("h2d")
	ev, err := m.CopyHtoDAsync(s, dev, host, n)
	if err != nil {
		t.Fatal(err)
	}
	m.CPUOps(1000) // host work overlapping the DMA
	m.Sync()
	if m.PendingCopies() != 0 {
		t.Errorf("pending copies after Sync: %d", m.PendingCopies())
	}
	if m.Now() < ev.Time() {
		t.Errorf("Sync did not reach the copy's completion: %g < %g", m.Now(), ev.Time())
	}
	st := m.Stats()
	if st.OverlappedBytes <= 0 || st.OverlappedBytes > n {
		t.Errorf("overlapped bytes = %d, want in (0, %d]", st.OverlappedBytes, n)
	}
}

// TestLaunchWaitsResolveOverlap: a kernel launch that waits on an
// upload event starts after it, and the copy time that ran under the
// launch latency counts as overlapped.
func TestLaunchWaitsResolveOverlap(t *testing.T) {
	const n = 65536
	m, host, dev := newTestMachine(n)
	s := m.NewStream("h2d")
	ev, err := m.CopyHtoDAsync(s, dev, host, n)
	if err != nil {
		t.Fatal(err)
	}
	m.LaunchKernelAt("k", 1, 32, 1000, 40, ev)
	if m.PendingCopies() != 0 {
		t.Error("launch wait did not resolve the pending upload")
	}
	st := m.Stats()
	if st.NumKernels != 1 {
		t.Errorf("kernels = %d", st.NumKernels)
	}
	// The GPU timeline must not start the kernel before the upload landed.
	if gp := m.GPUReadyEvent().Time(); gp <= ev.Time() {
		t.Errorf("kernel finished at %g, at or before its input landed (%g)", gp, ev.Time())
	}
}

// TestFreeWaitsForInFlightDMA: freeing memory under an in-flight copy
// stalls until the DMA completes instead of reclaiming it mid-transfer.
func TestFreeWaitsForInFlightDMA(t *testing.T) {
	const n = 4096
	m, host, dev := newTestMachine(n)
	s := m.NewStream("d2h")
	ev, err := m.CopyDtoHAsync(s, host, dev, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(CPU, host); err != nil {
		t.Fatal(err)
	}
	if m.Now() < ev.Time() {
		t.Errorf("Free reclaimed the host range mid-DMA: clock %g < %g", m.Now(), ev.Time())
	}
}

// TestStreamTraceLanes: each stream's copies land on its own lane, the
// issue instant lands on the CPU lane, and the two share a flow id.
func TestStreamTraceLanes(t *testing.T) {
	const n = 1024
	m, host, dev := newTestMachine(n)
	tr := trace.New()
	m.SetTracer(tr)
	s := m.NewStream("h2d")
	if _, err := m.CopyHtoDAsync(s, dev, host, n); err != nil {
		t.Fatal(err)
	}
	m.Sync()
	m.FlushTrace()
	var issue, copySpan *trace.Span
	for i, sp := range tr.Spans() {
		switch sp.Kind {
		case trace.KindIssue:
			issue = &tr.Spans()[i]
		case trace.KindHtoD:
			copySpan = &tr.Spans()[i]
		}
	}
	if issue == nil || copySpan == nil {
		t.Fatalf("missing spans: issue=%v copy=%v", issue, copySpan)
	}
	if issue.Lane != trace.LaneCPU {
		t.Errorf("issue instant on lane %v, want CPU", issue.Lane)
	}
	if copySpan.Lane != trace.LaneStreamBase {
		t.Errorf("copy span on lane %v, want first stream lane", copySpan.Lane)
	}
	if issue.Flow == 0 || issue.Flow != copySpan.Flow {
		t.Errorf("flow ids: issue %d, copy %d (want equal, nonzero)", issue.Flow, copySpan.Flow)
	}
}
