package core_test

import (
	"testing"

	"cgcm/internal/core"
	"cgcm/internal/metrics"
)

// TestMetricsEndToEnd attaches a registry to a full compile+run and
// cross-checks the snapshot against the machine's own statistics: the
// instruments must agree exactly with the counters the machine already
// keeps, across every instrumented layer.
func TestMetricsEndToEnd(t *testing.T) {
	reg := metrics.New()
	rep, err := core.CompileAndRun("hot.c", hotLoop, core.Options{
		Strategy: core.CGCMUnoptimized,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("Options.Metrics set but Report.Metrics is nil")
	}
	s := rep.Metrics
	st := rep.Stats

	// Machine layer: counters and transfer histograms mirror Stats.
	if got := s.Counter("machine.kernel.launches"); got != st.NumKernels {
		t.Errorf("machine.kernel.launches = %d, Stats.NumKernels = %d", got, st.NumKernels)
	}
	h2d := s.Histogram("machine.xfer.htod_bytes")
	if h2d == nil || h2d.Count != st.NumHtoD || int64(h2d.Sum) != st.BytesHtoD {
		t.Errorf("machine.xfer.htod_bytes = %+v, want count %d sum %d", h2d, st.NumHtoD, st.BytesHtoD)
	}
	d2h := s.Histogram("machine.xfer.dtoh_bytes")
	if d2h == nil || d2h.Count != st.NumDtoH || int64(d2h.Sum) != st.BytesDtoH {
		t.Errorf("machine.xfer.dtoh_bytes = %+v, want count %d sum %d", d2h, st.NumDtoH, st.BytesDtoH)
	}
	if kd := s.Histogram("machine.kernel.duration_seconds"); kd == nil || kd.Count != st.NumKernels {
		t.Errorf("machine.kernel.duration_seconds = %+v, want count %d", kd, st.NumKernels)
	}

	// Runtime layer: the unoptimized system maps and unmaps the vector
	// around every launch, so these must all have fired, and copy counts
	// mirror the machine's transfer counts (the runtime drives every copy).
	for _, name := range []string{"runtime.map.calls", "runtime.unmap.calls", "runtime.release.calls"} {
		if s.Counter(name) == 0 {
			t.Errorf("%s never incremented", name)
		}
	}
	if got := s.Counter("runtime.htod.copies"); got != st.NumHtoD {
		t.Errorf("runtime.htod.copies = %d, Stats.NumHtoD = %d", got, st.NumHtoD)
	}
	if got := s.Counter("runtime.dtoh.copies"); got != st.NumDtoH {
		t.Errorf("runtime.dtoh.copies = %d, Stats.NumDtoH = %d", got, st.NumDtoH)
	}

	// Whole-run gauges.
	if got := s.Gauge("machine.wall_seconds"); got != st.Wall {
		t.Errorf("machine.wall_seconds = %v, Stats.Wall = %v", got, st.Wall)
	}
	if got := s.Gauge("machine.gpu_ops"); int64(got) != st.GPUOps {
		t.Errorf("machine.gpu_ops = %v, Stats.GPUOps = %d", got, st.GPUOps)
	}
	if s.Gauge("interp.steps") <= 0 {
		t.Error("interp.steps not recorded")
	}
	if got := s.Gauge("runtime.live_units"); got != float64(rep.RTStats.LiveUnits) {
		t.Errorf("runtime.live_units = %v, RTStats.LiveUnits = %d", got, rep.RTStats.LiveUnits)
	}

	// Compiler layer: per-phase host-time gauges exist for at least the
	// communication-management pass that this strategy must run.
	if s.Gauge("compile.commmgmt.host_ns") <= 0 {
		t.Error("compile.commmgmt.host_ns not recorded")
	}
}

// TestMetricsOffByDefault ensures no snapshot is attached when no
// registry is provided.
func TestMetricsOffByDefault(t *testing.T) {
	rep, err := core.CompileAndRun("hot.c", hotLoop, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Fatal("Report.Metrics set without Options.Metrics")
	}
}
