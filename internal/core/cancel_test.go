package core_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"cgcm/internal/core"
	"cgcm/internal/interp"
)

// slowVec launches far more kernels than any test deadline allows, so a
// timeout always fires mid-run: the cancellation checkpoints (step-pool
// refill and kernel-launch boundary) must stop it long before the step
// limit would.
const slowVec = `
int main() {
	int n = 256;
	float *a = (float*)malloc(n * sizeof(float));
	for (int i = 0; i < n; i++) a[i] = (float)i;
	for (int t = 0; t < 200000; t++) {
		for (int i = 0; i < n; i++) a[i] = a[i] * 1.0001 + 0.5;
	}
	float sum = 0.0;
	for (int i = 0; i < n; i++) sum += a[i];
	print_float(sum);
	free(a);
	return 0;
}`

// TestRunContextDeadlineAborts is the -timeout satellite's contract: a
// huge problem aborts cleanly at a cancellation checkpoint with the
// typed error, the partial report survives, and no goroutine leaks.
func TestRunContextDeadlineAborts(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := core.CompileAndRunContext(ctx, "slow.c", slowVec, core.Options{Strategy: core.CGCMOptimized})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("run completed despite 30ms deadline; expected a cancellation error")
	}
	var cerr *interp.CancelError
	if !errors.As(err, &cerr) {
		t.Fatalf("error %v (%T) is not an *interp.CancelError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
	if cerr.Fn == "" {
		t.Error("CancelError.Fn is empty; want the function the run was in")
	}
	if rep == nil {
		t.Fatal("no partial report alongside the cancellation error")
	}
	// The abort must be prompt — checkpoint granularity, not step-limit
	// exhaustion. Allow generous slack for loaded CI machines.
	if elapsed > 5*time.Second {
		t.Errorf("abort took %v; cancellation checkpoints are not firing", elapsed)
	}

	// The kernel-engine worker pool must fully unwind after a canceled
	// launch: poll because exiting goroutines need a moment to die.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after canceled run: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextCancelImmediate: a context canceled before the run
// starts aborts before any kernel executes.
func TestRunContextCancelImmediate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.CompileAndRunContext(ctx, "slow.c", slowVec, core.Options{Strategy: core.CGCMOptimized})
	if err == nil {
		t.Fatal("run completed under a pre-canceled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}
