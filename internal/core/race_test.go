package core_test

import (
	"strings"
	"testing"

	"cgcm/internal/core"
)

// racySrc launches a kernel whose threads all store to element 0 — the
// canonical broken DOALL. Communication is hand-written so the program
// still "works" (last writer wins in the simulation) and the detector is
// what has to catch the bug.
const racySrc = `
__global__ void racy(float *v, int n) {
	v[0] = (float)tid();
}
int main() {
	float *h = (float*)malloc(64 * 8);
	float *d = (float*)cuda_malloc(64 * 8);
	cuda_memcpy_h2d(d, h, 64 * 8);
	racy<<<1, 64>>>(d, 64);
	cuda_memcpy_d2h(h, d, 64 * 8);
	cuda_free(d);
	print_float(h[0]);
	free(h);
	return 0;
}`

// disjointSrc is the fixed kernel: thread i writes only element i.
const disjointSrc = `
__global__ void fine(float *v, int n) {
	int i = tid();
	if (i < n) v[i] = (float)i * 2.0;
}
int main() {
	float *h = (float*)malloc(64 * 8);
	float *d = (float*)cuda_malloc(64 * 8);
	cuda_memcpy_h2d(d, h, 64 * 8);
	fine<<<1, 64>>>(d, 64);
	cuda_memcpy_d2h(h, d, 64 * 8);
	cuda_free(d);
	print_float(h[63]);
	free(h);
	return 0;
}`

// TestRaceDetectorPositive: overlapping per-thread write sets must be
// reported. Workers is pinned to 1 — detection is a property of the
// logged write intervals, not of physical concurrency, and a racy kernel
// on N workers would be a *real* data race on the simulated memory.
func TestRaceDetectorPositive(t *testing.T) {
	rep, err := core.CompileAndRun("racy.c", racySrc, core.Options{
		Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true},
		Workers: 1, RaceCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("race detector missed threads writing the same element")
	}
	f := rep.Races[0]
	if f.Kernel != "racy" {
		t.Errorf("finding names kernel %q, want racy", f.Kernel)
	}
	if f.TidA == f.TidB {
		t.Errorf("finding pairs thread %d with itself", f.TidA)
	}
	if f.Size <= 0 {
		t.Errorf("finding has non-positive overlap %d", f.Size)
	}
}

// TestRaceDetectorNegative: disjoint writes stay silent, at any worker
// count.
func TestRaceDetectorNegative(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rep, err := core.CompileAndRun("fine.c", disjointSrc, core.Options{
			Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true},
			Workers: workers, RaceCheck: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Races) != 0 {
			t.Errorf("workers=%d: false positive on disjoint writes: %+v", workers, rep.Races)
		}
	}
}

// TestRaceDetectorOffByDefault: no findings are collected unless asked.
func TestRaceDetectorOffByDefault(t *testing.T) {
	rep, err := core.CompileAndRun("racy.c", racySrc, core.Options{
		Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true}, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 0 {
		t.Errorf("RaceCheck off but findings collected: %+v", rep.Races)
	}
}

// faultSrc faults in thread 13 (and only thread 13) of a 64-thread grid:
// an out-of-bounds store past the 64-element allocation.
const faultSrc = `
__global__ void k(float *v, int n) {
	int i = tid();
	if (i == 13) v[n + 100] = 1.0;
	else if (i < n) v[i] = (float)i;
}
int main() {
	float *h = (float*)malloc(64 * 8);
	float *d = (float*)cuda_malloc(64 * 8);
	cuda_memcpy_h2d(d, h, 64 * 8);
	k<<<1, 64>>>(d, 64);
	cuda_memcpy_d2h(h, d, 64 * 8);
	return 0;
}`

// TestParallelFaultDeterminism: the engine must report the same fault —
// same thread id, same message — whatever the worker count, matching
// what sequential execution reports.
func TestParallelFaultDeterminism(t *testing.T) {
	var msgs []string
	for _, workers := range []int{1, 4} {
		_, err := core.CompileAndRun("fault.c", faultSrc, core.Options{
			Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true}, Workers: workers,
		})
		if err == nil {
			t.Fatalf("workers=%d: out-of-bounds kernel did not fault", workers)
		}
		if !strings.Contains(err.Error(), "thread 13") {
			t.Errorf("workers=%d: fault not attributed to thread 13: %v", workers, err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("fault message depends on worker count:\n  1: %s\n  4: %s", msgs[0], msgs[1])
	}
}
