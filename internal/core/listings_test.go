package core_test

import (
	"strings"
	"testing"

	"cgcm/internal/core"
	"cgcm/internal/ir"
)

// listing2 is the paper's Listing 2: automatic implicit management of an
// array of strings repeatedly processed by a kernel.
const paperListing2 = `
char *h_h_array[4] = {
	"What so proudly we hailed",
	"at the twilight's last gleaming",
	"whose broad stripes",
	"and bright stars"
};
int out[4];
__global__ void kernel(char **d_array, int *lens, int n) {
	int i = tid();
	if (i < n) {
		char *s = d_array[i];
		int len = 0;
		while (s[len]) len = len + 1;
		lens[i] = len;
	}
}
int main() {
	for (int i = 0; i < 8; i++) {
		kernel<<<1, 4>>>(h_h_array, out, 4);
	}
	for (int i = 0; i < 4; i++) print_int(out[i]);
	return 0;
}`

// runtimeCallsInLoop classifies the runtime calls of main by whether they
// sit inside a loop.
func runtimeCallsInLoop(t *testing.T, p *core.Program) (inside, outside map[string]int) {
	t.Helper()
	inside, outside = map[string]int{}, map[string]int{}
	main := p.Module.Func("main")
	main.Renumber()
	// A block is "in a loop" if it can reach itself.
	reachesSelf := func(b *ir.Block) bool {
		seen := map[*ir.Block]bool{}
		stack := append([]*ir.Block(nil), b.Succs()...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x == b {
				return true
			}
			if seen[x] {
				continue
			}
			seen[x] = true
			stack = append(stack, x.Succs()...)
		}
		return false
	}
	for _, b := range main.Blocks {
		inLoop := reachesSelf(b)
		for _, in := range b.Instrs {
			if in.Op == ir.OpIntrinsic && strings.HasPrefix(in.Name, "cgcm.") {
				if inLoop {
					inside[in.Name]++
				} else {
					outside[in.Name]++
				}
			}
		}
	}
	return
}

// TestListing3Shape verifies unoptimized management produces the paper's
// Listing 3: mapArray before the launch, unmapArray and releaseArray
// after, all INSIDE the loop (the cyclic pattern).
func TestListing3Shape(t *testing.T) {
	p, err := core.Compile("listing2.c", paperListing2, core.Options{
		Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	inside, _ := runtimeCallsInLoop(t, p)
	if inside["cgcm.mapArray"] == 0 {
		t.Error("Listing 3: no mapArray inside the loop")
	}
	if inside["cgcm.unmapArray"] == 0 {
		t.Error("Listing 3: no unmapArray inside the loop (cyclic DtoH missing)")
	}
	if inside["cgcm.releaseArray"] == 0 {
		t.Error("Listing 3: no releaseArray inside the loop")
	}
}

// TestListing4Shape verifies map promotion produces the paper's Listing 4:
// a hoisted mapArray above the loop, unmapArray/releaseArray below it,
// NO unmapArray left inside (interior DtoH deleted), while the interior
// mapArray remains for pointer translation.
func TestListing4Shape(t *testing.T) {
	p, err := core.Compile("listing2.c", paperListing2, core.Options{
		Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassDOALL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	inside, outside := runtimeCallsInLoop(t, p)
	if outside["cgcm.mapArray"] == 0 {
		t.Error("Listing 4: no hoisted mapArray above the loop")
	}
	if outside["cgcm.unmapArray"] == 0 {
		t.Error("Listing 4: no unmapArray below the loop")
	}
	if inside["cgcm.unmapArray"] != 0 {
		t.Errorf("Listing 4: %d unmapArray calls remain inside the loop", inside["cgcm.unmapArray"])
	}
	if inside["cgcm.mapArray"] == 0 {
		t.Error("Listing 4: interior mapArray (pointer translation) was deleted")
	}
	if inside["cgcm.releaseArray"] == 0 {
		t.Error("Listing 4: interior releaseArray (balance) was deleted")
	}

	// And the optimized program still computes the right lengths.
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output != "25\n31\n19\n16\n" {
		t.Errorf("output %q", rep.Output)
	}
	// Communication: the string units cross once in, results once out —
	// not once per launch.
	if rep.Stats.NumHtoD > 8 {
		t.Errorf("HtoD count %d: communication still cyclic", rep.Stats.NumHtoD)
	}
}
