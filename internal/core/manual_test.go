package core_test

import (
	"testing"

	"cgcm/internal/core"
)

// listing1 is the paper's Listing 1 quadrant: manual parallelization AND
// manual communication, written against the CUDA-driver-style builtins.
// Every transfer is explicit; CGCM must leave the device pointers alone.
const listing1 = `
__global__ void kernel(float *d_v, int n) {
	int i = tid();
	if (i < n) d_v[i] = d_v[i] * 2.0 + 1.0;
}
int main() {
	float *h_v = (float*)malloc(64 * 8);
	for (int i = 0; i < 64; i++) h_v[i] = (float)i;

	/* Copy the vector to the GPU */
	float *d_v = (float*)cuda_malloc(64 * 8);
	cuda_memcpy_h2d(d_v, h_v, 64 * 8);
	for (int t = 0; t < 10; t++) {
		kernel<<<1, 64>>>(d_v, 64);
	}
	/* Copy the results back and free the GPU copy */
	cuda_memcpy_d2h(h_v, d_v, 64 * 8);
	cuda_free(d_v);

	float s = 0.0;
	for (int i = 0; i < 64; i++) s += h_v[i];
	print_float(s / 1000000.0);
	free(h_v);
	return 0;
}`

// listing2 computes the same thing with zero communication code.
const listing2equiv = `
__global__ void kernel(float *v, int n) {
	int i = tid();
	if (i < n) v[i] = v[i] * 2.0 + 1.0;
}
int main() {
	float *v = (float*)malloc(64 * 8);
	for (int i = 0; i < 64; i++) v[i] = (float)i;
	for (int t = 0; t < 10; t++) {
		kernel<<<1, 64>>>(v, 64);
	}
	float s = 0.0;
	for (int i = 0; i < 64; i++) s += v[i];
	print_float(s / 1000000.0);
	free(v);
	return 0;
}`

func TestManualCommunicationQuadrant(t *testing.T) {
	// Manual program runs correctly even with CGCM management enabled:
	// the device pointers must be recognized and skipped.
	manual, err := core.CompileAndRun("listing1.c", listing1, core.Options{
		Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true},
	})
	if err != nil {
		t.Fatalf("manual: %v", err)
	}
	auto, err := core.CompileAndRun("listing2.c", listing2equiv, core.Options{
		Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassDOALL: true},
	})
	if err != nil {
		t.Fatalf("automatic: %v", err)
	}
	if manual.Output != auto.Output {
		t.Fatalf("manual %q != automatic %q", manual.Output, auto.Output)
	}
	// Hand-written management moves the array exactly once each way;
	// optimized CGCM matches it (the paper's point: automatic reaches
	// hand-tuned communication).
	if auto.Stats.NumHtoD > manual.Stats.NumHtoD+1 || auto.Stats.NumDtoH > manual.Stats.NumDtoH {
		t.Errorf("optimized CGCM (%d/%d transfers) worse than hand-written (%d/%d)",
			auto.Stats.NumHtoD, auto.Stats.NumDtoH,
			manual.Stats.NumHtoD, manual.Stats.NumDtoH)
	}
	// Manual program behaves identically under Sequential strategy
	// (nothing for the compiler to do).
	seq, err := core.CompileAndRun("listing1.c", listing1, core.Options{Strategy: core.Sequential})
	if err != nil {
		t.Fatalf("sequential manual: %v", err)
	}
	if seq.Output != manual.Output {
		t.Errorf("sequential manual output %q != managed %q", seq.Output, manual.Output)
	}
}

func TestManualAndAutomaticMix(t *testing.T) {
	// One kernel takes a manually managed buffer AND an automatic one:
	// CGCM maps only the automatic argument.
	src := `
__global__ void k(float *d_manual, float *auto_v, int n) {
	int i = tid();
	if (i < n) auto_v[i] = d_manual[i] + 1.0;
}
int main() {
	float *h = (float*)malloc(32 * 8);
	for (int i = 0; i < 32; i++) h[i] = (float)i;
	float *d = (float*)cuda_malloc(32 * 8);
	cuda_memcpy_h2d(d, h, 32 * 8);
	float *out = (float*)malloc(32 * 8);
	k<<<1, 32>>>(d, out, 32);
	float s = 0.0;
	for (int i = 0; i < 32; i++) s += out[i];
	print_float(s);
	cuda_free(d);
	free(h); free(out);
	return 0;
}`
	rep, err := core.CompileAndRun("mix.c", src, core.Options{
		Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0+1 + 1+1 + ... + 31+1 = 32*33/2 = 528
	if rep.Output != "528\n" {
		t.Errorf("output %q, want 528", rep.Output)
	}
}
