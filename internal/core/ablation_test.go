package core_test

import (
	"testing"

	"cgcm/internal/bench"
	"cgcm/internal/core"
)

// TestAblationGlueKernels: on srad (whose timestep loop has CPU glue
// between launches), disabling glue kernels must leave more transfers and
// a slower run, while outputs stay identical.
func TestAblationGlueKernels(t *testing.T) {
	p, ok := bench.ByName("srad")
	if !ok {
		t.Fatal("srad missing")
	}
	full, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}
	noGlue, err := core.CompileAndRun(p.Name, p.Source, core.Options{
		Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassGlueKernel: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Output != noGlue.Output {
		t.Fatal("glue kernels changed program output")
	}
	if full.GlueKernels == 0 {
		t.Fatal("glue kernels did not fire on srad")
	}
	if full.Stats.NumDtoH >= noGlue.Stats.NumDtoH {
		t.Errorf("glue kernels did not reduce transfers: %d vs %d",
			full.Stats.NumDtoH, noGlue.Stats.NumDtoH)
	}
	if full.Stats.Wall >= noGlue.Stats.Wall {
		t.Errorf("glue kernels did not speed up srad: %.0fus vs %.0fus",
			full.Stats.Wall*1e6, noGlue.Stats.Wall*1e6)
	}
}

// TestAblationAllocaPromotion: cfd's helper holds flux buffers in its
// stack frame; without alloca promotion those maps cannot climb into
// main and out of the timestep loop.
func TestAblationAllocaPromotion(t *testing.T) {
	p, ok := bench.ByName("cfd")
	if !ok {
		t.Fatal("cfd missing")
	}
	full, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}
	noAP, err := core.CompileAndRun(p.Name, p.Source, core.Options{
		Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassAllocaPromo: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Output != noAP.Output {
		t.Fatal("alloca promotion changed program output")
	}
	if full.AllocaPromotions == 0 {
		t.Fatal("alloca promotion did not fire on cfd")
	}
	if full.Stats.NumHtoD >= noAP.Stats.NumHtoD {
		t.Errorf("alloca promotion did not reduce transfers: %d vs %d",
			full.Stats.NumHtoD, noAP.Stats.NumHtoD)
	}
}

// TestAblationMapPromotion: with map promotion off, every optimized
// program degenerates to the unoptimized communication pattern.
func TestAblationMapPromotion(t *testing.T) {
	p, ok := bench.ByName("jacobi-2d-imper")
	if !ok {
		t.Fatal("jacobi missing")
	}
	full, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}
	noMP, err := core.CompileAndRun(p.Name, p.Source, core.Options{
		Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassMapPromo: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	unopt, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMUnoptimized})
	if err != nil {
		t.Fatal(err)
	}
	if full.Output != noMP.Output || full.Output != unopt.Output {
		t.Fatal("outputs diverged")
	}
	if full.Promotions == 0 {
		t.Fatal("map promotion did not fire on jacobi")
	}
	if full.Stats.NumDtoH >= noMP.Stats.NumDtoH {
		t.Errorf("map promotion did not reduce DtoH: %d vs %d",
			full.Stats.NumDtoH, noMP.Stats.NumDtoH)
	}
	// Without map promotion the transfer count matches unoptimized.
	if noMP.Stats.NumDtoH != unopt.Stats.NumDtoH {
		t.Errorf("map-promotion-only ablation (%d DtoH) differs from unoptimized (%d)",
			noMP.Stats.NumDtoH, unopt.Stats.NumDtoH)
	}
}

// TestOptimizationNeverHurts reproduces the paper's §6.3 claim on a
// sample of programs: "Across all 24 applications, communication
// optimizations never reduce performance."
func TestOptimizationNeverHurts(t *testing.T) {
	for _, name := range []string{"gemm", "seidel", "kmeans", "nw", "gramschmidt", "fm"} {
		p, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		un, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMUnoptimized})
		if err != nil {
			t.Fatal(err)
		}
		op, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized})
		if err != nil {
			t.Fatal(err)
		}
		if op.Stats.Wall > un.Stats.Wall*1.001 {
			t.Errorf("%s: optimization hurt: %.0fus -> %.0fus", name,
				un.Stats.Wall*1e6, op.Stats.Wall*1e6)
		}
	}
}

// TestSequentialHasNoGPUActivity sanity-checks the baseline.
func TestSequentialHasNoGPUActivity(t *testing.T) {
	p, _ := bench.ByName("gemm")
	rep, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.NumKernels != 0 || rep.Stats.BytesHtoD != 0 {
		t.Errorf("sequential run used the GPU: %+v", rep.Stats)
	}
}

// TestInspectorTransfersBytesNotUnits verifies the idealized comparator's
// contract: one byte per touched allocation unit per direction.
func TestInspectorTransfersBytesNotUnits(t *testing.T) {
	src := `
int main() {
	float *a = (float*)malloc(1024 * 8);
	float *b = (float*)malloc(1024 * 8);
	for (int i = 0; i < 1024; i++) a[i] = 1.0;
	for (int i = 0; i < 1024; i++) b[i] = a[i] * 2.0;
	print_float(b[5]);
	free(a); free(b);
	return 0;
}`
	rep, err := core.CompileAndRun("ie.c", src, core.Options{Strategy: core.InspectorExecutor})
	if err != nil {
		t.Fatal(err)
	}
	// Two launches; first touches {a}, second {a, b}: at most 3 HtoD
	// bytes and 2 DtoH bytes.
	if rep.Stats.BytesHtoD > 3 || rep.Stats.BytesDtoH > 2 {
		t.Errorf("inspector moved %d/%d bytes; the oracle moves one per unit",
			rep.Stats.BytesHtoD, rep.Stats.BytesDtoH)
	}
	if rep.Stats.NumKernels != 2 {
		t.Errorf("kernels = %d", rep.Stats.NumKernels)
	}
}
