// Package core assembles the CGCM system: the mini-C front end, the DOALL
// parallelizer, communication management, the communication optimization
// passes, and the simulated machine, behind one Pipeline API (Figure 3 of
// the paper).
package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"cgcm/internal/doall"
	"cgcm/internal/faultinject"
	"cgcm/internal/interp"
	"cgcm/internal/ir"
	"cgcm/internal/irbuild"
	"cgcm/internal/machine"
	"cgcm/internal/metrics"
	"cgcm/internal/minic/parser"
	"cgcm/internal/minic/sema"
	"cgcm/internal/passes/allocapromo"
	"cgcm/internal/passes/commmgmt"
	"cgcm/internal/passes/constfold"
	"cgcm/internal/passes/gluekernel"
	"cgcm/internal/passes/mappromo"
	"cgcm/internal/passes/overlap"
	"cgcm/internal/prof"
	"cgcm/internal/remarks"
	runtimelib "cgcm/internal/runtime"
	"cgcm/internal/trace"
)

// Strategy selects how a program is parallelized and how its CPU-GPU
// communication is handled — the four systems Figure 4 compares.
type Strategy int

// Strategies.
const (
	// Sequential runs the program unmodified on the CPU.
	Sequential Strategy = iota
	// InspectorExecutor parallelizes DOALL loops and manages communication
	// with the idealized inspector-executor protocol (§6.3).
	InspectorExecutor
	// CGCMUnoptimized parallelizes DOALL loops and inserts unoptimized
	// CGCM management (map/unmap/release at every launch).
	CGCMUnoptimized
	// CGCMOptimized additionally runs the communication optimizations:
	// glue kernels, alloca promotion, then map promotion (§5.4 ordering).
	CGCMOptimized
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case InspectorExecutor:
		return "inspector-executor"
	case CGCMUnoptimized:
		return "cgcm-unoptimized"
	case CGCMOptimized:
		return "cgcm-optimized"
	}
	return "?"
}

// Pass names an ablatable compilation pass.
type Pass string

// Ablatable passes.
const (
	// PassDOALL is the parallelizer; ablate it for manually parallelized
	// inputs that already contain launches.
	PassDOALL Pass = "doall"
	// PassGlueKernel is the glue-kernel enabling transformation (§5.3).
	PassGlueKernel Pass = "gluekernel"
	// PassAllocaPromo is alloca promotion (§5.2).
	PassAllocaPromo Pass = "allocapromo"
	// PassMapPromo is map promotion itself (§5.1).
	PassMapPromo Pass = "mappromo"
	// PassOverlap is the communication-overlap pass: it rewrites map/unmap
	// call sites to their asynchronous stream variants where the host
	// provably does not touch the unit before the next synchronization
	// point. Scheduled only when Options.Async is set.
	PassOverlap Pass = "overlap"
)

// ablatablePasses lists the valid PassSet members.
var ablatablePasses = []Pass{PassDOALL, PassGlueKernel, PassAllocaPromo, PassMapPromo, PassOverlap}

// PassSet is a set of passes to ablate. It implements flag.Value, so CLI
// flags can say -ablate gluekernel,mappromo; repeated flags accumulate.
type PassSet map[Pass]bool

// Has reports membership (nil-safe).
func (s PassSet) Has(p Pass) bool { return s[p] }

// String renders the set as a sorted comma-separated list (flag.Value).
func (s PassSet) String() string {
	names := make([]string, 0, len(s))
	for p, on := range s {
		if on {
			names = append(names, string(p))
		}
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// Set parses a comma-separated pass list into the set (flag.Value).
// Unknown pass names are an error; "none" clears the set.
func (s *PassSet) Set(v string) error {
	if *s == nil {
		*s = make(PassSet)
	}
	for _, name := range strings.Split(v, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "none" {
			clear(*s)
			continue
		}
		ok := false
		for _, p := range ablatablePasses {
			if string(p) == name {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown pass %q (valid: %s)", name, passNames())
		}
		(*s)[Pass(name)] = true
	}
	return nil
}

func passNames() string {
	names := make([]string, len(ablatablePasses))
	for i, p := range ablatablePasses {
		names[i] = string(p)
	}
	return strings.Join(names, ", ")
}

// Options configures a compilation.
type Options struct {
	Strategy Strategy
	// Cost overrides the machine cost model; nil uses the default.
	Cost *machine.CostModel
	// Tracer, when non-nil, enables structured observability: it receives
	// compile-phase spans from Compile and, from each Run, the machine,
	// runtime, and fault spans of that run (merged post-run, so concurrent
	// runs never interleave). Export with trace.WriteChrome.
	Tracer *trace.Tracer
	// Ablate names optimization passes to skip, for ablation studies.
	Ablate PassSet
	// DumpWriter, when set, receives IR dumps after each phase.
	DumpWriter io.Writer
	// Limits overrides interpreter limits.
	Limits *interp.Limits
	// Workers sets the number of host goroutines simulating GPU threads
	// per kernel launch; 0 means GOMAXPROCS. Results are identical for
	// every worker count.
	Workers int
	// RaceCheck enables the kernel write-set race detector; findings are
	// collected in Report.Races.
	RaceCheck bool
	// Profile enables the exact source-level profiler: Report.Profile
	// receives per-line simulated GPU op attribution, per-launch-site
	// kernel walls, per-unit transfer bytes, and runtime-library time.
	// Profiling implies span collection (launch-site walls come from
	// kernel spans).
	Profile bool
	// Metrics, when non-nil, receives counter/gauge/histogram
	// instrumentation from the machine, the runtime library, and the
	// compiler (see DESIGN.md for the name catalogue). The registry may
	// be shared across runs; counters and histograms accumulate.
	Metrics *metrics.Registry
	// Remarks enables the optimization-remarks engine: every pass emits
	// Applied/Missed/Analysis remarks during Compile (Program.Remarks),
	// and each Run adds Runtime remarks for allocation units the
	// communication ledger saw stay cyclic, cross-referencing the
	// compile-time blocking reason (Report.Remarks).
	Remarks bool
	// GPUMemBytes caps the simulated device memory (0 = unlimited). A
	// finite device makes Map fallible: the runtime evicts
	// least-recently-released units under pressure and degrades to CPU
	// fallback when the working set truly does not fit. Output stays
	// bit-identical to the unlimited-memory run.
	GPUMemBytes int64
	// FaultSpec, when non-nil, attaches a deterministic device
	// fault-injection plan to each Run (parse one with
	// faultinject.ParseSpec). Injected faults are absorbed by the
	// runtime's retry/evict/degrade ladder; program output stays
	// bit-identical to the fault-free run.
	FaultSpec *faultinject.Spec
	// Async enables overlapped communication: the overlap pass rewrites
	// provably safe map/unmap sites to asynchronous stream copies, and each
	// Run arms the runtime's upload/flush streams. Program output, the
	// ledger's copy counts, and remarks are identical with Async on or off
	// (only wall time and the ledger's overlapped-bytes column change).
	Async bool
}

// ablated reports whether a pass is disabled.
func (o *Options) ablated(p Pass) bool { return o.Ablate.Has(p) }

// tracing reports whether span collection is wanted.
func (o *Options) tracing() bool { return o.Tracer != nil || o.Profile }

// Report is the outcome of running a compiled program.
type Report struct {
	Strategy Strategy
	Output   string
	Exit     int64

	Stats   machine.Stats
	RTStats runtimelib.Stats

	// Kernels is the number of distinct GPU kernels in the final module.
	Kernels int
	// LaunchSites is the number of launch instructions.
	LaunchSites int
	// DOALLLoopsFound/Parallelized report parallelizer activity.
	DOALLLoopsFound        int
	DOALLLoopsParallelized int
	// Promotions reports map promotion activity (optimized strategy).
	Promotions int
	// GlueKernels reports glue kernel outlinings.
	GlueKernels int
	// AllocaPromotions reports alloca promotion activity.
	AllocaPromotions int
	// OverlapSites reports map/unmap sites the overlap pass moved to
	// asynchronous stream copies (0 unless Options.Async).
	OverlapSites int

	// Races holds write-set race findings (when Options.RaceCheck).
	Races []interp.RaceFinding

	// Comm is the per-allocation-unit communication ledger (always
	// populated): which units crossed the bus, how often, and whether
	// each unit's pattern was cyclic or acyclic.
	Comm trace.Ledger
	// Phases records the compile phases with host wall time and activity.
	Phases []trace.PhaseSpan
	// Spans holds this run's structured timeline spans (when tracing).
	Spans []trace.Span
	// Profile is the exact execution profile (when Options.Profile).
	Profile *prof.Profile
	// Remarks holds the compile-time optimization remarks plus this
	// run's Runtime remarks, canonically sorted (when Options.Remarks).
	Remarks []remarks.Remark
	// Metrics is the frozen registry snapshot taken after this run (when
	// Options.Metrics is set).
	Metrics *metrics.Snapshot
}

// Program is a compiled mini-C program ready to run. Run is read-only on
// the Program, so one compiled Program may run concurrently on any
// number of fresh simulated machines.
type Program struct {
	Module *ir.Module
	Opts   Options

	name              string
	doallFound        int
	doallParallelized int
	promotions        int
	glueKernels       int
	allocaPromotions  int
	overlapSites      int

	kernels     int
	launchSites int
	phases      []trace.PhaseSpan
	remarks     []remarks.Remark
}

// Kernels reports the number of distinct GPU kernels in the compiled
// module, counted once at the end of Compile.
func (p *Program) Kernels() int { return p.kernels }

// LaunchSites reports the number of launch instructions in the compiled
// module, counted once at the end of Compile.
func (p *Program) LaunchSites() int { return p.launchSites }

// Phases returns the compile-phase spans recorded during Compile.
func (p *Program) Phases() []trace.PhaseSpan { return p.phases }

// Remarks returns the compile-time optimization remarks, canonically
// sorted (empty unless Options.Remarks was set).
func (p *Program) Remarks() []remarks.Remark { return p.remarks }

// Compile parses, checks, lowers, and transforms src according to opts.
// All module mutation — including instruction renumbering and the
// kernel/launch-site census — happens here, leaving Run side-effect-free.
func Compile(name, src string, opts Options) (*Program, error) {
	return CompileContext(context.Background(), name, src, opts)
}

// CompileContext is Compile with cancellation: the context is checked
// between compilation phases, so a canceled caller (request deadline,
// client disconnect) stops paying for the remaining passes. The
// returned error wraps the context's error, so errors.Is sees it.
func CompileContext(ctx context.Context, name, src string, opts Options) (prog *Program, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer recoverInternal("compile", &err)
	var phases []trace.PhaseSpan
	begin := func(phase string) func(activity int, note string) {
		start := time.Now()
		return func(activity int, note string) {
			phases = append(phases, trace.PhaseSpan{
				Name:     phase,
				HostNS:   time.Since(start).Nanoseconds(),
				Activity: activity,
				Note:     note,
			})
		}
	}

	// Phase-boundary cancellation: compilation is all host work, so the
	// check lives between phases, not inside them.
	canceled := func(next string) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("compile %s: canceled before %s: %w", name, next, cerr)
		}
		return nil
	}
	if err := canceled("parse"); err != nil {
		return nil, err
	}

	end := begin("parse")
	file, perrs := parser.Parse(name, src)
	if len(perrs) > 0 {
		return nil, joinErrors("parse", perrs)
	}
	end(len(file.Decls), "")

	end = begin("sema")
	info, serrs := sema.Check(file)
	if len(serrs) > 0 {
		return nil, joinErrors("check", serrs)
	}
	end(0, "")

	end = begin("irbuild")
	mod, err := irbuild.Build(info)
	if err != nil {
		return nil, err
	}
	end(len(mod.Funcs), "functions")

	p := &Program{Module: mod, Opts: opts, name: name}
	var rc *remarks.Collector
	if opts.Remarks {
		rc = remarks.NewCollector(name)
	}
	dump := func(phase string) {
		if opts.DumpWriter != nil {
			fmt.Fprintf(opts.DumpWriter, "=== after %s ===\n%s\n", phase, mod)
		}
	}
	dump("irbuild")
	finish := func() (*Program, error) {
		p.remarks = rc.Remarks()
		mod.Renumber()
		for _, f := range mod.Funcs {
			if f.Kernel {
				p.kernels++
			}
			f.Instrs(func(instr *ir.Instr) {
				if instr.Op == ir.OpLaunch {
					p.launchSites++
				}
			})
		}
		p.phases = phases
		opts.Tracer.RecordPhases(phases...)
		// Per-phase compile metrics: host wall time and activity count,
		// named compile.<phase>.host_ns / compile.<phase>.activity.
		// Gauges (not counters) so repeated compiles report the latest
		// compile, matching what Phases shows.
		for _, ph := range phases {
			opts.Metrics.Gauge("compile." + ph.Name + ".host_ns").Set(float64(ph.HostNS))
			opts.Metrics.Gauge("compile." + ph.Name + ".activity").Set(float64(ph.Activity))
		}
		return p, nil
	}

	if err := canceled("constfold"); err != nil {
		return nil, err
	}
	// Constant folding is semantics-preserving and runs under every
	// strategy, so all four systems execute identical arithmetic; it
	// also lets the parallelizer compute static trip counts from
	// literal-expression bounds.
	end = begin("constfold")
	cres, err := constfold.Run(mod)
	if err != nil {
		return nil, err
	}
	end(cres.Folded+cres.Simplified, "instructions folded")
	dump("constfold")

	if opts.Strategy == Sequential {
		return finish()
	}
	if !opts.ablated(PassDOALL) {
		end = begin("doall")
		dres, err := doall.Run(mod, rc)
		if err != nil {
			return nil, err
		}
		p.doallFound = dres.LoopsFound
		p.doallParallelized = dres.LoopsParallelized
		end(dres.LoopsParallelized, "loops parallelized")
		dump("doall")
	}
	if opts.Strategy == InspectorExecutor {
		// Inspector-executor manages communication at run time; no
		// compile-time management is inserted.
		return finish()
	}
	end = begin("commmgmt")
	mres, err := commmgmt.Run(mod, rc)
	if err != nil {
		return nil, err
	}
	end(mres.MapsInserted, "maps inserted")
	dump("commmgmt")

	if opts.Strategy == CGCMOptimized {
		if err := canceled("optimization passes"); err != nil {
			return nil, err
		}
		// §5.4: "the glue kernel optimization runs before alloca
		// promotion, and map promotion runs last."
		if !opts.ablated(PassGlueKernel) {
			end = begin("gluekernel")
			gres, err := gluekernel.Run(mod, rc)
			if err != nil {
				return nil, err
			}
			p.glueKernels = gres.Outlined
			end(gres.Outlined, "kernels outlined")
			dump("gluekernel")
		}
		if !opts.ablated(PassAllocaPromo) {
			end = begin("allocapromo")
			ares, err := allocapromo.Run(mod, rc)
			if err != nil {
				return nil, err
			}
			p.allocaPromotions = ares.Promoted
			end(ares.Promoted, "allocas promoted")
			dump("allocapromo")
		}
		if !opts.ablated(PassMapPromo) {
			end = begin("mappromo")
			pres, err := mappromo.Run(mod, rc)
			if err != nil {
				return nil, err
			}
			p.promotions = pres.Promotions
			end(pres.Promotions, "maps promoted")
			dump("mappromo")
		}
	}
	// The overlap pass runs last (after map promotion has settled where
	// the runtime calls live) and only when the caller asked for
	// asynchronous communication; it renames provably safe map/unmap
	// sites to their stream variants.
	if opts.Async && !opts.ablated(PassOverlap) {
		end = begin("overlap")
		ores, err := overlap.Run(mod, rc)
		if err != nil {
			return nil, err
		}
		p.overlapSites = ores.Rewritten()
		end(ores.Rewritten(), "sites moved to streams")
		dump("overlap")
	}
	return finish()
}

// RunConfig carries per-run overrides for RunWith, the per-request
// surface of the multi-tenant service: the compiled Program (and its
// baked-in Options) is shared and immutable, while the context, the
// metrics registry, and the device-memory governor differ per request.
type RunConfig struct {
	// Ctx, when non-nil, cancels the run: a fired deadline or client
	// disconnect aborts execution at the next kernel-launch boundary (or
	// within one step batch inside a kernel) with a typed
	// *interp.CancelError. The partial Report is still returned.
	Ctx context.Context
	// Metrics, when non-nil, overrides Options.Metrics for this run, so
	// one shared Program can report into per-tenant registries.
	Metrics *metrics.Registry
	// MemGovernor, when non-nil, is attached to this run's machine: every
	// device allocation reserves against it first, so a per-tenant quota
	// can deny device memory. Denials look like capacity OOM, driving the
	// runtime's own evict-then-degrade ladder — output stays identical.
	// Attaching a governor enables the resilient runtime even when the
	// run has no explicit capacity or fault plan.
	MemGovernor machine.MemGovernor
}

// Run executes the compiled program on a fresh simulated machine. It does
// not mutate the Program, so concurrent Run calls on one Program are safe
// and produce identical Reports.
func (p *Program) Run() (*Report, error) { return p.RunWith(RunConfig{}) }

// RunContext is Run with cancellation; see RunConfig.Ctx.
func (p *Program) RunContext(ctx context.Context) (*Report, error) {
	return p.RunWith(RunConfig{Ctx: ctx})
}

// RunWith executes the program with per-run overrides. Like Run it is
// read-only on the Program, so concurrent RunWith calls are safe. When
// the run is canceled the error wraps *interp.CancelError and the
// returned Report carries the statistics accumulated so far.
func (p *Program) RunWith(rc RunConfig) (rep *Report, err error) {
	defer recoverInternal("run", &err)
	met := p.Opts.Metrics
	if rc.Metrics != nil {
		met = rc.Metrics
	}
	cost := machine.DefaultCostModel()
	if p.Opts.Cost != nil {
		cost = *p.Opts.Cost
	}
	mach := machine.New(cost)
	// Trace into a private per-run tracer; it merges into the caller's
	// sink after the run, so concurrent runs never interleave spans.
	var runTr *trace.Tracer
	if p.Opts.tracing() {
		runTr = trace.New()
		mach.SetTracer(runTr)
	}
	mach.SetMetrics(met)
	rt := runtimelib.New(mach)
	rt.Tr = runTr
	rt.SetMetrics(met)
	// Fault model: a finite or fault-injected device flips the runtime
	// into resilient mode before module load, so even the device regions
	// of globals go through the evict/retry/degrade ladder. A per-run
	// memory governor (tenant quota) is another way the device can say
	// no, so it arms the same machinery.
	if p.Opts.GPUMemBytes > 0 {
		mach.SetGPUCapacity(p.Opts.GPUMemBytes)
	}
	if p.Opts.FaultSpec != nil && !p.Opts.FaultSpec.Empty() {
		mach.SetFaultPlan(p.Opts.FaultSpec.NewPlan())
	}
	if rc.MemGovernor != nil {
		mach.SetMemGovernor(rc.MemGovernor)
	}
	if p.Opts.GPUMemBytes > 0 || mach.FaultPlan() != nil || rc.MemGovernor != nil {
		rt.EnableResilience(runtimelib.DefaultResilience())
	}
	if p.Opts.Async {
		// Arm the upload/flush streams and route per-copy overlap credit
		// into the communication ledger's overlapped-bytes column.
		rt.EnableAsync()
		mach.SetOverlapSink(rt.Ledger.RecordOverlap)
	}
	var out bytes.Buffer
	in, err := interp.New(p.Module, mach, rt, &out)
	if err != nil {
		return nil, err
	}
	in.Tr = runTr
	var col *prof.Collector
	if p.Opts.Profile {
		col = prof.NewCollector(p.name)
		rt.Prof = col
		in.Prof = col
	}
	if p.Opts.Strategy == InspectorExecutor {
		in.Mode = interp.Inspector
	}
	if p.Opts.Limits != nil {
		in.Lim = *p.Opts.Limits
	}
	in.Workers = p.Opts.Workers
	in.RaceCheck = p.Opts.RaceCheck
	if rc.Ctx != nil {
		in.SetContext(rc.Ctx)
	}
	exit, err := in.Run()
	rep = &Report{
		Strategy:               p.Opts.Strategy,
		Output:                 out.String(),
		Exit:                   exit,
		Stats:                  mach.Stats(),
		RTStats:                rt.Stats(),
		Kernels:                p.kernels,
		LaunchSites:            p.launchSites,
		DOALLLoopsFound:        p.doallFound,
		DOALLLoopsParallelized: p.doallParallelized,
		Promotions:             p.promotions,
		GlueKernels:            p.glueKernels,
		AllocaPromotions:       p.allocaPromotions,
		OverlapSites:           p.overlapSites,
		Races:                  in.Races,
		Comm:                   rt.Ledger.Ledger(),
		Phases:                 p.phases,
	}
	if runTr != nil {
		mach.FlushTrace()
		rep.Spans = runTr.Spans()
		if col != nil {
			// Launch-site walls come from the kernel spans this run
			// emitted; everything else was attributed during execution.
			col.ConsumeSpans(rep.Spans)
			rep.Profile = col.Profile()
		}
		p.Opts.Tracer.Merge(runTr)
	}
	if p.Opts.Remarks {
		rep.Remarks = withRuntimeRemarks(p.name, p.remarks, rep.Comm, rep.RTStats, rt.DegradeReason())
	}
	if m := met; m != nil {
		st := rep.Stats
		m.Gauge("machine.wall_seconds").Set(st.Wall)
		m.Gauge("machine.cpu_ops").Set(float64(st.CPUOps))
		m.Gauge("machine.gpu_ops").Set(float64(st.GPUOps))
		m.Gauge("machine.stall_seconds").Set(st.StallTime)
		m.Gauge("interp.steps").Set(float64(in.Steps()))
		m.Gauge("runtime.live_units").Set(float64(rep.RTStats.LiveUnits))
		m.Gauge("machine.gpu_mem_peak_bytes").Set(float64(mach.GPUMemPeak()))
		rep.Metrics = m.Snapshot()
	}
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// withRuntimeRemarks appends execution-time findings to the compile-time
// remarks: every allocation unit the ledger classified cyclic gets one
// Runtime remark naming its round trips and transfer epochs. When a
// compile-time Missed remark names the same unit (matched by allocation
// site), the Runtime remark echoes its reason, closing the loop between
// the observed ping-pong and why the optimizer could not remove it.
func withRuntimeRemarks(file string, compile []remarks.Remark, ledger trace.Ledger, rts runtimelib.Stats, degradeReason string) []remarks.Remark {
	out := make([]remarks.Remark, len(compile))
	copy(out, compile)
	// Fault-model findings: one remark per unit the runtime evicted under
	// device-memory pressure, and one remark when the device failed and
	// the run finished in CPU-fallback mode.
	for i := range ledger.Units {
		u := &ledger.Units[i]
		if u.Evictions == 0 {
			continue
		}
		out = append(out, remarks.Remark{
			Pass: "runtime", Kind: remarks.Runtime, Reason: remarks.ReasonDeviceOOM,
			File: file, Line: u.Line, Unit: unitLabel(u),
			Message: fmt.Sprintf(
				"allocation unit evicted from device memory %d time(s) under memory pressure; each re-map re-uploads %d bytes",
				u.Evictions, u.Size),
		})
	}
	if rts.Degraded {
		out = append(out, remarks.Remark{
			Pass: "runtime", Kind: remarks.Runtime, Reason: remarks.ReasonDeviceFailure,
			File: file,
			Message: fmt.Sprintf(
				"device failed (%s); %d kernel(s) ran on the CPU in fallback mode with identical output",
				degradeReason, rts.FallbackKernels),
		})
	}
	for i := range ledger.Units {
		u := &ledger.Units[i]
		if u.Pattern != trace.PatternCyclic {
			continue
		}
		r := remarks.Remark{
			Pass: "runtime",
			Kind: remarks.Runtime,
			File: file,
			Line: u.Line,
			Unit: unitLabel(u),
			Message: fmt.Sprintf(
				"allocation unit stayed cyclic: %d round trip(s) over %d transfer epoch(s), %d HtoD / %d DtoH copies",
				u.RoundTrips, u.TransferEpochs, u.HtoDCopies, u.DtoHCopies),
		}
		if blocked := blockingRemark(compile, u); blocked != nil {
			r.Reason = blocked.Reason
			r.Message += fmt.Sprintf("; %s left it unpromoted (%s)", blocked.Pass, blocked.Reason)
		} else if applied := appliedRemark(compile, u); applied != nil {
			r.Message += fmt.Sprintf("; %s promoted this unit — the residual round trip is inherent to the program's CPU-GPU data flow", applied.Pass)
		} else {
			r.Message += "; no compile-time remark names this unit (optimization ablated, or the pattern is inherent to the program)"
		}
		out = append(out, r)
	}
	remarks.Sort(out)
	return out
}

// blockingRemark finds the compile-time Missed remark whose unit label
// names the ledger unit, preferring map promotion (the pass whose miss
// directly leaves a unit cyclic) over earlier passes.
func blockingRemark(compile []remarks.Remark, u *trace.UnitStats) *remarks.Remark {
	var found *remarks.Remark
	for i := range compile {
		c := &compile[i]
		// Overlap remarks describe transfer timing, not promotion; they
		// must not change the cyclic-unit diagnosis (it is identical with
		// -async on or off).
		if c.Pass == "overlap" {
			continue
		}
		if c.Kind != remarks.Missed || !remarks.MatchesUnit(c.Unit, u.Name, u.Line) {
			continue
		}
		if c.Pass == "mappromo" {
			return c
		}
		if found == nil {
			found = c
		}
	}
	return found
}

// appliedRemark finds a compile-time Applied promotion remark naming the
// ledger unit — evidence a pass did fire, so a remaining round trip is
// inherent data flow, not a missed optimization.
func appliedRemark(compile []remarks.Remark, u *trace.UnitStats) *remarks.Remark {
	for i := range compile {
		c := &compile[i]
		if c.Kind != remarks.Applied || c.Pass == "commmgmt" || c.Pass == "doall" || c.Pass == "overlap" {
			continue
		}
		if remarks.MatchesUnit(c.Unit, u.Name, u.Line) {
			return c
		}
	}
	return nil
}

// unitLabel renders a ledger unit as a remark unit label, embedding the
// allocation-site line when known so it cross-references compile labels.
func unitLabel(u *trace.UnitStats) string {
	if u.Line > 0 {
		return fmt.Sprintf("%s:%d", u.Name, u.Line)
	}
	return u.Name
}

// CompileAndRun is the one-call convenience used by examples and tests.
func CompileAndRun(name, src string, opts Options) (*Report, error) {
	p, err := Compile(name, src, opts)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// CompileAndRunContext is CompileAndRun with cancellation threaded
// through both the compile phases and the run.
func CompileAndRunContext(ctx context.Context, name, src string, opts Options) (*Report, error) {
	p, err := CompileContext(ctx, name, src, opts)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx)
}

// recoverInternal converts a typed ir.InternalError panic (a compiler
// bug, not a user-program error) into an ordinary returned error, so no
// panic escapes Compile or Program.Run. Other panic values propagate:
// masking unknown panics would hide real crashes.
func recoverInternal(phase string, err *error) {
	if p := recover(); p != nil {
		ie, ok := p.(*ir.InternalError)
		if !ok {
			panic(p)
		}
		*err = fmt.Errorf("%s: internal compiler error: %w", phase, ie)
	}
}

func joinErrors(phase string, errs []error) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s failed with %d error(s):", phase, len(errs))
	for i, e := range errs {
		if i == 8 {
			sb.WriteString("\n  ...")
			break
		}
		sb.WriteString("\n  " + e.Error())
	}
	return fmt.Errorf("%s", sb.String())
}
