// Package core assembles the CGCM system: the mini-C front end, the DOALL
// parallelizer, communication management, the communication optimization
// passes, and the simulated machine, behind one Pipeline API (Figure 3 of
// the paper).
package core

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"cgcm/internal/doall"
	"cgcm/internal/interp"
	"cgcm/internal/ir"
	"cgcm/internal/irbuild"
	"cgcm/internal/machine"
	"cgcm/internal/minic/parser"
	"cgcm/internal/minic/sema"
	"cgcm/internal/passes/allocapromo"
	"cgcm/internal/passes/commmgmt"
	"cgcm/internal/passes/constfold"
	"cgcm/internal/passes/gluekernel"
	"cgcm/internal/passes/mappromo"
	runtimelib "cgcm/internal/runtime"
)

// Strategy selects how a program is parallelized and how its CPU-GPU
// communication is handled — the four systems Figure 4 compares.
type Strategy int

// Strategies.
const (
	// Sequential runs the program unmodified on the CPU.
	Sequential Strategy = iota
	// InspectorExecutor parallelizes DOALL loops and manages communication
	// with the idealized inspector-executor protocol (§6.3).
	InspectorExecutor
	// CGCMUnoptimized parallelizes DOALL loops and inserts unoptimized
	// CGCM management (map/unmap/release at every launch).
	CGCMUnoptimized
	// CGCMOptimized additionally runs the communication optimizations:
	// glue kernels, alloca promotion, then map promotion (§5.4 ordering).
	CGCMOptimized
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case InspectorExecutor:
		return "inspector-executor"
	case CGCMUnoptimized:
		return "cgcm-unoptimized"
	case CGCMOptimized:
		return "cgcm-optimized"
	}
	return "?"
}

// Options configures a compilation.
type Options struct {
	Strategy Strategy
	// Cost overrides the machine cost model; nil uses the default.
	Cost *machine.CostModel
	// Trace enables machine event tracing (Figure 2).
	Trace bool
	// DumpWriter, when set, receives IR dumps after each phase.
	DumpWriter io.Writer
	// Limits overrides interpreter limits.
	Limits *interp.Limits
	// DisableDOALL skips the parallelizer (for manually parallelized
	// inputs that already contain launches).
	DisableDOALL bool
	// DisableGlueKernels/DisableAllocaPromotion allow ablation of the
	// enabling transformations while keeping map promotion.
	DisableGlueKernels     bool
	DisableAllocaPromotion bool
	// DisableMapPromotion ablates map promotion itself.
	DisableMapPromotion bool
	// Workers sets the number of host goroutines simulating GPU threads
	// per kernel launch; 0 means GOMAXPROCS. Results are identical for
	// every worker count.
	Workers int
	// RaceCheck enables the kernel write-set race detector; findings are
	// collected in Report.Races.
	RaceCheck bool
}

// Report is the outcome of running a compiled program.
type Report struct {
	Strategy Strategy
	Output   string
	Exit     int64

	Stats   machine.Stats
	RTStats runtimelib.Stats

	// Kernels is the number of distinct GPU kernels in the final module.
	Kernels int
	// LaunchSites is the number of launch instructions.
	LaunchSites int
	// DOALLLoopsFound/Parallelized report parallelizer activity.
	DOALLLoopsFound        int
	DOALLLoopsParallelized int
	// Promotions reports map promotion activity (optimized strategy).
	Promotions int
	// GlueKernels reports glue kernel outlinings.
	GlueKernels int
	// AllocaPromotions reports alloca promotion activity.
	AllocaPromotions int

	// Races holds write-set race findings (when Options.RaceCheck).
	Races []interp.RaceFinding

	Trace []machine.Event
}

// Program is a compiled mini-C program ready to run.
type Program struct {
	Module *ir.Module
	Opts   Options

	doallFound        int
	doallParallelized int
	promotions        int
	glueKernels       int
	allocaPromotions  int
}

// Compile parses, checks, lowers, and transforms src according to opts.
func Compile(name, src string, opts Options) (*Program, error) {
	file, perrs := parser.Parse(name, src)
	if len(perrs) > 0 {
		return nil, joinErrors("parse", perrs)
	}
	info, serrs := sema.Check(file)
	if len(serrs) > 0 {
		return nil, joinErrors("check", serrs)
	}
	mod, err := irbuild.Build(info)
	if err != nil {
		return nil, err
	}
	p := &Program{Module: mod, Opts: opts}
	dump := func(phase string) {
		if opts.DumpWriter != nil {
			fmt.Fprintf(opts.DumpWriter, "=== after %s ===\n%s\n", phase, mod)
		}
	}
	dump("irbuild")

	// Constant folding is semantics-preserving and runs under every
	// strategy, so all four systems execute identical arithmetic; it
	// also lets the parallelizer compute static trip counts from
	// literal-expression bounds.
	if _, err := constfold.Run(mod); err != nil {
		return nil, err
	}
	dump("constfold")

	if opts.Strategy == Sequential {
		return p, nil
	}
	if !opts.DisableDOALL {
		dres, err := doall.Run(mod)
		if err != nil {
			return nil, err
		}
		p.doallFound = dres.LoopsFound
		p.doallParallelized = dres.LoopsParallelized
		dump("doall")
	}
	if opts.Strategy == InspectorExecutor {
		// Inspector-executor manages communication at run time; no
		// compile-time management is inserted.
		return p, nil
	}
	if _, err := commmgmt.Run(mod); err != nil {
		return nil, err
	}
	dump("commmgmt")

	if opts.Strategy == CGCMOptimized {
		// §5.4: "the glue kernel optimization runs before alloca
		// promotion, and map promotion runs last."
		if !opts.DisableGlueKernels {
			gres, err := gluekernel.Run(mod)
			if err != nil {
				return nil, err
			}
			p.glueKernels = gres.Outlined
			dump("gluekernel")
		}
		if !opts.DisableAllocaPromotion {
			ares, err := allocapromo.Run(mod)
			if err != nil {
				return nil, err
			}
			p.allocaPromotions = ares.Promoted
			dump("allocapromo")
		}
		if !opts.DisableMapPromotion {
			mres, err := mappromo.Run(mod)
			if err != nil {
				return nil, err
			}
			p.promotions = mres.Promotions
			dump("mappromo")
		}
	}
	return p, nil
}

// Run executes the compiled program on a fresh simulated machine.
func (p *Program) Run() (*Report, error) {
	cost := machine.DefaultCostModel()
	if p.Opts.Cost != nil {
		cost = *p.Opts.Cost
	}
	mach := machine.New(cost)
	if p.Opts.Trace {
		mach.EnableTrace()
	}
	rt := runtimelib.New(mach)
	var out bytes.Buffer
	in := interp.New(p.Module, mach, rt, &out)
	if p.Opts.Strategy == InspectorExecutor {
		in.Mode = interp.Inspector
	}
	if p.Opts.Limits != nil {
		in.Lim = *p.Opts.Limits
	}
	in.Workers = p.Opts.Workers
	in.RaceCheck = p.Opts.RaceCheck
	exit, err := in.Run()
	rep := &Report{
		Races: in.Races,
		Strategy:               p.Opts.Strategy,
		Output:                 out.String(),
		Exit:                   exit,
		Stats:                  mach.Stats(),
		RTStats:                rt.Stats(),
		DOALLLoopsFound:        p.doallFound,
		DOALLLoopsParallelized: p.doallParallelized,
		Promotions:             p.promotions,
		GlueKernels:            p.glueKernels,
		AllocaPromotions:       p.allocaPromotions,
	}
	mach.FlushTrace()
	rep.Trace = mach.Trace()
	for _, f := range p.Module.Funcs {
		if f.Kernel {
			rep.Kernels++
		}
	}
	p.Module.Renumber()
	for _, f := range p.Module.Funcs {
		f.Instrs(func(instr *ir.Instr) {
			if instr.Op == ir.OpLaunch {
				rep.LaunchSites++
			}
		})
	}
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// CompileAndRun is the one-call convenience used by examples and tests.
func CompileAndRun(name, src string, opts Options) (*Report, error) {
	p, err := Compile(name, src, opts)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

func joinErrors(phase string, errs []error) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s failed with %d error(s):", phase, len(errs))
	for i, e := range errs {
		if i == 8 {
			sb.WriteString("\n  ...")
			break
		}
		sb.WriteString("\n  " + e.Error())
	}
	return fmt.Errorf("%s", sb.String())
}
