package core_test

import (
	"reflect"
	"testing"

	"cgcm/internal/bench"
	"cgcm/internal/core"
	"cgcm/internal/trace"
)

// TestDeprecatedTraceAlias: the legacy Options.Trace bool must produce
// the same Report.Spans and legacy Report.Trace events as attaching a
// Tracer sink — the old switch delegates to the same span collection.
func TestDeprecatedTraceAlias(t *testing.T) {
	p, ok := bench.ByName("gemm")
	if !ok {
		t.Fatal("gemm missing")
	}
	viaBool, err := core.CompileAndRun(p.Name, p.Source, core.Options{
		Strategy: core.CGCMOptimized, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	viaTracer, err := core.CompileAndRun(p.Name, p.Source, core.Options{
		Strategy: core.CGCMOptimized, Tracer: trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(viaBool.Spans) == 0 {
		t.Fatal("Options.Trace collected no spans")
	}
	if !reflect.DeepEqual(viaBool.Spans, viaTracer.Spans) {
		t.Fatalf("deprecated Trace diverged from Tracer: %d vs %d spans",
			len(viaBool.Spans), len(viaTracer.Spans))
	}
	if !reflect.DeepEqual(viaBool.Trace, viaTracer.Trace) {
		t.Fatalf("legacy event slices diverged: %d vs %d events",
			len(viaBool.Trace), len(viaTracer.Trace))
	}
}

// TestDeprecatedDisableAliases: every Disable* bool must behave exactly
// like the Ablate entry it deprecates — identical stats, output, and
// pass-firing counts, on a program where the pass matters.
func TestDeprecatedDisableAliases(t *testing.T) {
	cases := []struct {
		name    string
		program string
		boolOpt func(*core.Options)
		pass    core.Pass
	}{
		{"DisableDOALL", "gemm",
			func(o *core.Options) { o.DisableDOALL = true }, core.PassDOALL},
		{"DisableGlueKernels", "srad",
			func(o *core.Options) { o.DisableGlueKernels = true }, core.PassGlueKernel},
		{"DisableAllocaPromotion", "cfd",
			func(o *core.Options) { o.DisableAllocaPromotion = true }, core.PassAllocaPromo},
		{"DisableMapPromotion", "jacobi-2d-imper",
			func(o *core.Options) { o.DisableMapPromotion = true }, core.PassMapPromo},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, ok := bench.ByName(tc.program)
			if !ok {
				t.Fatalf("%s missing", tc.program)
			}
			optsBool := core.Options{Strategy: core.CGCMOptimized}
			tc.boolOpt(&optsBool)
			viaBool, err := core.CompileAndRun(p.Name, p.Source, optsBool)
			if err != nil {
				t.Fatal(err)
			}
			viaAblate, err := core.CompileAndRun(p.Name, p.Source, core.Options{
				Strategy: core.CGCMOptimized, Ablate: core.PassSet{tc.pass: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			if viaBool.Stats != viaAblate.Stats {
				t.Errorf("stats diverged:\nbool:   %+v\nablate: %+v", viaBool.Stats, viaAblate.Stats)
			}
			if viaBool.Output != viaAblate.Output {
				t.Error("outputs diverged")
			}
			if viaBool.Promotions != viaAblate.Promotions ||
				viaBool.GlueKernels != viaAblate.GlueKernels ||
				viaBool.AllocaPromotions != viaAblate.AllocaPromotions {
				t.Errorf("pass counts diverged: bool {%d %d %d}, ablate {%d %d %d}",
					viaBool.Promotions, viaBool.GlueKernels, viaBool.AllocaPromotions,
					viaAblate.Promotions, viaAblate.GlueKernels, viaAblate.AllocaPromotions)
			}
			// The ablation must actually change behavior relative to the
			// fully optimized run, or this test proves nothing.
			full, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized})
			if err != nil {
				t.Fatal(err)
			}
			if full.Stats == viaBool.Stats {
				t.Errorf("%s had no observable effect on %s", tc.name, tc.program)
			}
		})
	}
}
