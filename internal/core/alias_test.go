package core_test

import (
	"reflect"
	"testing"

	"cgcm/internal/bench"
	"cgcm/internal/core"
	"cgcm/internal/trace"
)

// TestTracerSpans: attaching a Tracer sink must populate both the sink
// and Report.Spans with the same span slice — Spans is the report-side
// view of the attached tracer, not a second collection.
func TestTracerSpans(t *testing.T) {
	p, ok := bench.ByName("gemm")
	if !ok {
		t.Fatal("gemm missing")
	}
	tr := trace.New()
	rep, err := core.CompileAndRun(p.Name, p.Source, core.Options{
		Strategy: core.CGCMOptimized, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) == 0 {
		t.Fatal("Tracer collected no spans")
	}
	if !reflect.DeepEqual(rep.Spans, tr.Spans()) {
		t.Fatalf("Report.Spans diverged from the attached tracer: %d vs %d spans",
			len(rep.Spans), len(tr.Spans()))
	}
	// Without a sink, no spans are collected and the report stays empty.
	bare, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Spans) != 0 {
		t.Fatalf("spans collected without a tracer: %d", len(bare.Spans))
	}
}

// TestAblateDisablesPasses: every named entry in a PassSet must actually
// suppress its pass — observable as changed stats versus the fully
// optimized run — on a program where the pass matters.
func TestAblateDisablesPasses(t *testing.T) {
	cases := []struct {
		program string
		pass    core.Pass
	}{
		{"gemm", core.PassDOALL},
		{"srad", core.PassGlueKernel},
		{"cfd", core.PassAllocaPromo},
		{"jacobi-2d-imper", core.PassMapPromo},
	}
	for _, tc := range cases {
		t.Run(string(tc.pass), func(t *testing.T) {
			p, ok := bench.ByName(tc.program)
			if !ok {
				t.Fatalf("%s missing", tc.program)
			}
			full, err := core.CompileAndRun(p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized})
			if err != nil {
				t.Fatal(err)
			}
			ablated, err := core.CompileAndRun(p.Name, p.Source, core.Options{
				Strategy: core.CGCMOptimized, Ablate: core.PassSet{tc.pass: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			if full.Output != ablated.Output {
				t.Error("ablation changed program output")
			}
			if full.Stats == ablated.Stats {
				t.Errorf("ablating %s had no observable effect on %s", tc.pass, tc.program)
			}
		})
	}
}
