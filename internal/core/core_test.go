package core_test

import (
	"strings"
	"testing"

	"cgcm/internal/core"
)

// vecScale repeatedly scales a heap vector on the GPU inside a timestep
// loop — the canonical shape where unoptimized CGCM is cyclic and map
// promotion makes it acyclic.
const vecScale = `
int main() {
	int n = 512;
	float *a = (float*)malloc(n * sizeof(float));
	for (int i = 0; i < n; i++) {
		a[i] = (float)i;
	}
	for (int t = 0; t < 10; t++) {
		for (int i = 0; i < n; i++) {
			a[i] = a[i] * 2.0 + 1.0;
		}
	}
	float sum = 0.0;
	for (int i = 0; i < n; i++) sum += a[i];
	print_float(sum / 1000000.0);
	free(a);
	return 0;
}`

func compileRun(t *testing.T, name, src string, opts core.Options) *core.Report {
	t.Helper()
	rep, err := core.CompileAndRun(name, src, opts)
	if err != nil {
		out := ""
		if rep != nil {
			out = rep.Output
		}
		t.Fatalf("%s [%s]: %v\noutput:\n%s", name, opts.Strategy, err, out)
	}
	return rep
}

func TestStrategiesAgreeOnVecScale(t *testing.T) {
	seq := compileRun(t, "vecscale.c", vecScale, core.Options{Strategy: core.Sequential})
	if seq.Output == "" {
		t.Fatal("sequential produced no output")
	}
	for _, s := range []core.Strategy{core.InspectorExecutor, core.CGCMUnoptimized, core.CGCMOptimized} {
		rep := compileRun(t, "vecscale.c", vecScale, core.Options{Strategy: s})
		if rep.Output != seq.Output {
			t.Errorf("%s output diverged:\n got %q\nwant %q", s, rep.Output, seq.Output)
		}
		if rep.DOALLLoopsParallelized == 0 {
			t.Errorf("%s: no loops parallelized", s)
		}
		if rep.Stats.NumKernels == 0 {
			t.Errorf("%s: no kernels executed", s)
		}
	}
}

func TestMapPromotionMakesAcyclic(t *testing.T) {
	un := compileRun(t, "vecscale.c", vecScale, core.Options{Strategy: core.CGCMUnoptimized})
	op := compileRun(t, "vecscale.c", vecScale, core.Options{Strategy: core.CGCMOptimized})
	if op.Promotions == 0 {
		t.Fatalf("optimized run performed no map promotions")
	}
	// The timestep loop launches 10 kernels; unoptimized CGCM copies the
	// vector both ways every iteration, optimized copies it in once and
	// out once across the whole loop.
	if op.Stats.NumDtoH >= un.Stats.NumDtoH {
		t.Errorf("optimized DtoH transfers (%d) not fewer than unoptimized (%d)",
			op.Stats.NumDtoH, un.Stats.NumDtoH)
	}
	if op.Stats.Wall >= un.Stats.Wall {
		t.Errorf("optimized wall %.6f not faster than unoptimized %.6f",
			op.Stats.Wall, un.Stats.Wall)
	}
}

func TestSpeedupOrdering(t *testing.T) {
	seq := compileRun(t, "vecscale.c", vecScale, core.Options{Strategy: core.Sequential})
	op := compileRun(t, "vecscale.c", vecScale, core.Options{Strategy: core.CGCMOptimized})
	t.Logf("sequential wall=%.6gs optimized wall=%.6gs (%.2fx)",
		seq.Stats.Wall, op.Stats.Wall, seq.Stats.Wall/op.Stats.Wall)
}

// matmul checks 2D flattened indexing survives the dependence test.
const matmul = `
int main() {
	float *a = (float*)malloc(32 * 32 * sizeof(float));
	float *b = (float*)malloc(32 * 32 * sizeof(float));
	float *c = (float*)malloc(32 * 32 * sizeof(float));
	for (int i = 0; i < 32; i++) {
		for (int j = 0; j < 32; j++) {
			a[i * 32 + j] = (float)(i + j);
			b[i * 32 + j] = (float)(i - j);
			c[i * 32 + j] = 0.0;
		}
	}
	for (int i = 0; i < 32; i++) {
		for (int j = 0; j < 32; j++) {
			float s = 0.0;
			for (int k = 0; k < 32; k++) {
				s += a[i * 32 + k] * b[k * 32 + j];
			}
			c[i * 32 + j] = s;
		}
	}
	float checksum = 0.0;
	for (int i = 0; i < 32 * 32; i++) checksum += c[i];
	print_float(checksum);
	free(a); free(b); free(c);
	return 0;
}`

func TestMatmulParallelizes(t *testing.T) {
	seq := compileRun(t, "matmul.c", matmul, core.Options{Strategy: core.Sequential})
	op := compileRun(t, "matmul.c", matmul, core.Options{Strategy: core.CGCMOptimized})
	if op.Output != seq.Output {
		t.Errorf("matmul diverged: got %q want %q", op.Output, seq.Output)
	}
	if op.DOALLLoopsParallelized == 0 {
		t.Error("matmul: no loops parallelized")
	}
}

// globalArray exercises globals as kernel live-ins (named regions).
const globalArray = `
float data[256];
int main() {
	for (int i = 0; i < 256; i++) data[i] = (float)i * 0.5;
	for (int t = 0; t < 4; t++) {
		for (int i = 0; i < 256; i++) data[i] = data[i] + 1.0;
	}
	float s = 0.0;
	for (int i = 0; i < 256; i++) s += data[i];
	print_float(s);
	return 0;
}`

func TestGlobalArrayManaged(t *testing.T) {
	seq := compileRun(t, "globals.c", globalArray, core.Options{Strategy: core.Sequential})
	for _, s := range []core.Strategy{core.CGCMUnoptimized, core.CGCMOptimized} {
		rep := compileRun(t, "globals.c", globalArray, core.Options{Strategy: s})
		if rep.Output != seq.Output {
			t.Errorf("%s: got %q want %q", s, rep.Output, seq.Output)
		}
	}
}

// manualKernel is Listing 2's shape: manual parallelization with a
// declared kernel, automatic communication management.
const manualKernel = `
__global__ void scale(float *v, int n, float f) {
	int i = tid();
	if (i < n) {
		v[i] = v[i] * f;
	}
}
int main() {
	int n = 256;
	float *v = (float*)malloc(n * sizeof(float));
	for (int i = 0; i < n; i++) v[i] = (float)i;
	for (int t = 0; t < 5; t++) {
		scale<<<2, 128>>>(v, n, 1.5);
	}
	float s = 0.0;
	for (int i = 0; i < n; i++) s += v[i];
	print_float(s / 100000.0);
	free(v);
	return 0;
}`

func TestManualParallelizationManaged(t *testing.T) {
	// DOALL disabled: the kernel is hand-written; CGCM only manages
	// communication (the paper's "manual parallelization, automatic
	// communication" quadrant). The verification loops remain on the CPU.
	for _, s := range []core.Strategy{core.CGCMUnoptimized, core.CGCMOptimized} {
		rep := compileRun(t, "manual.c", manualKernel, core.Options{Strategy: s, Ablate: core.PassSet{core.PassDOALL: true}})
		if !strings.Contains(rep.Output, "0.24") { // 32640*1.5^5/1e5 = 2.478...
			t.Logf("output: %q", rep.Output)
		}
		if rep.Stats.NumKernels != 5 {
			t.Errorf("%s: expected 5 kernel executions, got %d", s, rep.Stats.NumKernels)
		}
	}
	un := compileRun(t, "manual.c", manualKernel, core.Options{Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true}})
	op := compileRun(t, "manual.c", manualKernel, core.Options{Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassDOALL: true}})
	if un.Output != op.Output {
		t.Errorf("manual kernel outputs diverge: %q vs %q", un.Output, op.Output)
	}
}

// stringArray is Listing 2 itself: an array of strings processed by a
// kernel, requiring mapArray (double indirection).
const stringArray = `
char *lines[3] = {"what so proudly", "we hailed", "at the twilight"};
int lens[3];
__global__ void measure(char **arr, int *out, int n) {
	int i = tid();
	if (i < n) {
		char *s = arr[i];
		int len = 0;
		while (s[len]) len = len + 1;
		out[i] = len;
	}
}
int main() {
	measure<<<1, 3>>>(lines, lens, 3);
	for (int i = 0; i < 3; i++) print_int(lens[i]);
	return 0;
}`

func TestStringArrayMapArray(t *testing.T) {
	rep := compileRun(t, "strings.c", stringArray, core.Options{Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true}})
	want := "15\n9\n15\n"
	if rep.Output != want {
		t.Errorf("got %q want %q", rep.Output, want)
	}
}
