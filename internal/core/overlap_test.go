package core_test

import (
	"reflect"
	"testing"

	"cgcm/internal/bench"
	"cgcm/internal/core"
	"cgcm/internal/faultinject"
	"cgcm/internal/remarks"
	"cgcm/internal/trace"
)

// overlapPrograms are the programs the overlap determinism suite sweeps:
// the Comm.-limited programs the optimization targets, plus a
// GPU-limited one (gemm) and a promoted stencil (jacobi) to cover runs
// where overlap has little to do.
var overlapPrograms = append(append([]string{}, bench.CommLimited...), "gemm", "jacobi-2d-imper")

// stripOverlap removes the overlap ledger column (the one field allowed
// to differ between a synchronous and an overlapped run).
func stripOverlap(l trace.Ledger) trace.Ledger {
	units := make([]trace.UnitStats, len(l.Units))
	copy(units, l.Units)
	for i := range units {
		units[i].OverlappedBytes = 0
	}
	l.Units = units
	return l
}

// nonOverlapRemarks filters out the overlap pass's own remarks; every
// other remark must be unaffected by -async.
func nonOverlapRemarks(rs []remarks.Remark) []remarks.Remark {
	out := []remarks.Remark{}
	for _, r := range rs {
		if r.Pass != "overlap" {
			out = append(out, r)
		}
	}
	return out
}

// checkAsyncInvariant runs one program with the given options
// synchronously and with overlap, and enforces the tentpole invariant:
// bit-identical output, identical transfer counts and bytes, an
// identical ledger modulo the overlapped-bytes column, identical
// non-overlap remarks, and identical runtime stats.
func checkAsyncInvariant(t *testing.T, name, source string, opts core.Options) (syncRep, asyncRep *core.Report) {
	t.Helper()
	opts.Remarks = true
	opts.Async = false
	syncRep, err := core.CompileAndRun(name, source, opts)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	opts.Async = true
	asyncRep, err = core.CompileAndRun(name, source, opts)
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	if syncRep.Output != asyncRep.Output {
		t.Errorf("output differs with -async")
	}
	if syncRep.Exit != asyncRep.Exit {
		t.Errorf("exit codes differ: %d vs %d", syncRep.Exit, asyncRep.Exit)
	}
	s, a := syncRep.Stats, asyncRep.Stats
	if s.NumHtoD != a.NumHtoD || s.NumDtoH != a.NumDtoH ||
		s.BytesHtoD != a.BytesHtoD || s.BytesDtoH != a.BytesDtoH {
		t.Errorf("transfer counts differ: sync %d/%d (%d/%d B), async %d/%d (%d/%d B)",
			s.NumHtoD, s.NumDtoH, s.BytesHtoD, s.BytesDtoH,
			a.NumHtoD, a.NumDtoH, a.BytesHtoD, a.BytesDtoH)
	}
	if s.NumKernels != a.NumKernels || s.FallbackKernels != a.FallbackKernels {
		t.Errorf("kernel counts differ: %d/%d vs %d/%d",
			s.NumKernels, s.FallbackKernels, a.NumKernels, a.FallbackKernels)
	}
	if s.InjectedFaults != a.InjectedFaults {
		t.Errorf("injected faults differ: %d vs %d", s.InjectedFaults, a.InjectedFaults)
	}
	if syncRep.RTStats != asyncRep.RTStats {
		t.Errorf("runtime stats differ:\nsync:  %+v\nasync: %+v", syncRep.RTStats, asyncRep.RTStats)
	}
	if !reflect.DeepEqual(stripOverlap(syncRep.Comm), stripOverlap(asyncRep.Comm)) {
		t.Errorf("ledger differs beyond overlapped bytes:\nsync:\n%s\nasync:\n%s",
			syncRep.Comm, asyncRep.Comm)
	}
	if !reflect.DeepEqual(nonOverlapRemarks(syncRep.Remarks), nonOverlapRemarks(asyncRep.Remarks)) {
		t.Errorf("non-overlap remarks differ with -async")
	}
	return syncRep, asyncRep
}

// hostConsumesFlush: the host reads the kernel's result immediately
// after the launch, in the same basic block as the generated unmap — the
// flush cannot overlap anything, so the overlap pass must leave it
// synchronous and say why.
const hostConsumesFlush = `
float a[64];
__global__ void scale(float *p, int n) {
	int i = tid();
	if (i < n) p[i] = p[i] * 2.0;
}
int main() {
	for (int i = 0; i < 64; i++) a[i] = (float)i;
	scale<<<1, 64>>>(a, 64);
	print_float(a[1]);
	return 0;
}`

// indirectArrayOverlap: a doubly-indirect pointer array needs
// mapArray/unmapArray, which the overlap pass refuses to stream.
const indirectArrayOverlap = `
char *lines[3] = {"alpha", "be", "gamma!"};
int lens[3];
__global__ void measure(char **arr, int *out, int n) {
	int i = tid();
	if (i < n) {
		char *s = arr[i];
		int len = 0;
		while (s[len]) len = len + 1;
		out[i] = len;
	}
}
int main() {
	measure<<<1, 3>>>(lines, lens, 3);
	for (int i = 0; i < 3; i++) print_int(lens[i]);
	return 0;
}`

// TestOverlapMissedReasons pins the pass's refusal paths: a flush the
// host consumes in-block stays synchronous with ReasonHostAccess, and
// doubly-indirect array sites stay synchronous with ReasonIndirectArray.
// Both programs still satisfy the async invariant.
func TestOverlapMissedReasons(t *testing.T) {
	countMissed := func(rs []remarks.Remark, reason remarks.Reason) int {
		n := 0
		for _, r := range rs {
			if r.Pass == "overlap" && r.Kind == remarks.Missed && r.Reason == reason {
				n++
			}
		}
		return n
	}
	t.Run("host-access", func(t *testing.T) {
		_, asyncRep := checkAsyncInvariant(t, "hostread.c", hostConsumesFlush, core.Options{
			Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true},
		})
		if got := countMissed(asyncRep.Remarks, remarks.ReasonHostAccess); got == 0 {
			t.Error("no Missed(host-access) remark for a flush the host consumes in-block")
		}
	})
	t.Run("indirect-array", func(t *testing.T) {
		_, asyncRep := checkAsyncInvariant(t, "strings.c", indirectArrayOverlap, core.Options{
			Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true},
		})
		if got := countMissed(asyncRep.Remarks, remarks.ReasonIndirectArray); got == 0 {
			t.Error("no Missed(indirect-array) remark for mapArray/unmapArray sites")
		}
	})
}

// TestOverlapDeterminism: -async must not change anything observable
// except wall time and the overlapped-bytes column, at any worker count.
func TestOverlapDeterminism(t *testing.T) {
	for _, name := range overlapPrograms {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, ok := bench.ByName(name)
			if !ok {
				t.Fatalf("%s missing from suite", name)
			}
			for _, workers := range []int{1, 4} {
				checkAsyncInvariant(t, p.Name, p.Source, core.Options{
					Strategy: core.CGCMOptimized, Workers: workers,
				})
			}
		})
	}
}

// TestOverlapWins: the optimization must actually pay on the
// Comm.-limited programs — shorter simulated wall, nonzero overlapped
// bytes in the ledger, and rewritten sites reported.
func TestOverlapWins(t *testing.T) {
	for _, name := range bench.CommLimited {
		p, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("%s missing from suite", name)
		}
		syncRep, asyncRep := checkAsyncInvariant(t, p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized})
		if asyncRep.Stats.Wall >= syncRep.Stats.Wall {
			t.Errorf("%s: async wall %.1fus did not beat sync %.1fus",
				name, asyncRep.Stats.Wall*1e6, syncRep.Stats.Wall*1e6)
		}
		if asyncRep.Comm.OverlappedBytes() == 0 {
			t.Errorf("%s: ledger reports no overlapped bytes", name)
		}
		if asyncRep.Stats.OverlappedBytes != asyncRep.Comm.OverlappedBytes() {
			t.Errorf("%s: machine overlapped bytes %d != ledger %d",
				name, asyncRep.Stats.OverlappedBytes, asyncRep.Comm.OverlappedBytes())
		}
		if asyncRep.OverlapSites == 0 {
			t.Errorf("%s: overlap pass rewrote no sites", name)
		}
		if syncRep.Stats.OverlappedBytes != 0 {
			t.Errorf("%s: synchronous run reports overlapped bytes", name)
		}
		var overlapRemarks int
		for _, r := range asyncRep.Remarks {
			if r.Pass == "overlap" {
				overlapRemarks++
			}
		}
		if overlapRemarks == 0 {
			t.Errorf("%s: no overlap remarks emitted", name)
		}
	}
}

// TestOverlapUnderFaults sweeps the PR 5 fault matrix over the async
// path: transfer faults land on in-flight stream copies, allocation
// faults force eviction/degradation mid-prefetch — and the run must
// still match the synchronous run bit for bit, with the same fault,
// retry, rescue, and fallback counts.
func TestOverlapUnderFaults(t *testing.T) {
	specs := []string{
		"seed=7,htod=0.5",
		"seed=3,dtoh=0.5",
		"seed=11,htod=0.3,dtoh=0.3",
		"alloc@2",
		"fail=htod@4",
		"fail=dtoh@2",
		"seed=5,htod=0.2,dtoh=0.2,alloc@3",
	}
	// Finite-memory configs: 0 = unlimited; the small cap forces
	// eviction and, with faults, the full escalation ladder.
	mems := []int64{0, 96 * 1024}
	for _, name := range []string{"atax", "bicg"} {
		p, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("%s missing from suite", name)
		}
		for _, spec := range specs {
			for _, mem := range mems {
				fs, err := faultinject.ParseSpec(spec)
				if err != nil {
					t.Fatalf("spec %q: %v", spec, err)
				}
				t.Run(name+"/"+spec, func(t *testing.T) {
					checkAsyncInvariant(t, p.Name, p.Source, core.Options{
						Strategy:    core.CGCMOptimized,
						FaultSpec:   fs,
						GPUMemBytes: mem,
					})
				})
			}
		}
	}
}
