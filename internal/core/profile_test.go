package core_test

import (
	"bytes"
	"strings"
	"testing"

	"cgcm/internal/core"
)

// hotLoop is a DOALL program whose GPU work is dominated by one source
// line: the inner 200-iteration loop lives entirely on line 8 of the
// string (the leading newline is line 1).
const hotLoop = `
int main() {
	int n = 1024;
	float *a = (float*)malloc(n * sizeof(float));
	for (int i = 0; i < n; i++) { a[i] = (float)i; }
	for (int i = 0; i < n; i++) {
		float acc = a[i];
		for (int j = 0; j < 200; j++) { acc = acc * 0.5 + 1.0; }
		a[i] = acc;
	}
	float s = 0.0;
	for (int i = 0; i < n; i++) { s = s + a[i]; }
	print_float(s);
	free(a);
	return 0;
}`

const hotLine = 8

// TestProfileHotLineAttribution compiles a program with a known hot loop
// and checks the profiler pins >=90% of all simulated GPU ops on that
// source line.
func TestProfileHotLineAttribution(t *testing.T) {
	rep, err := core.CompileAndRun("hot.c", hotLoop, core.Options{
		Strategy: core.CGCMOptimized,
		Profile:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Profile
	if p == nil {
		t.Fatal("Options.Profile set but Report.Profile is nil")
	}
	if p.TotalGPUOps != rep.Stats.GPUOps {
		t.Fatalf("profile total %d != machine GPU ops %d", p.TotalGPUOps, rep.Stats.GPUOps)
	}
	var hot int64
	for _, ls := range p.Lines {
		if ls.Line == hotLine {
			hot += ls.GPUOps
		}
	}
	if pct := float64(hot) / float64(p.TotalGPUOps); pct < 0.9 {
		t.Fatalf("hot line %d got %.1f%% of %d GPU ops, want >=90%%\nlines: %+v",
			hotLine, pct*100, p.TotalGPUOps, p.Lines)
	}
	// The hottest line must render first in both outputs.
	var flat, folded bytes.Buffer
	if err := p.WriteFlat(&flat, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(flat.String(), "hot.c:8") {
		t.Fatalf("flat profile missing hot line:\n%s", flat.String())
	}
	first := strings.SplitN(folded.String(), "\n", 2)[0]
	if !strings.Contains(first, ";hot.c:8 ") {
		t.Fatalf("folded profile does not lead with the hot line: %q", first)
	}
	// Launch-site walls come from kernel spans; they must cover every
	// kernel the machine ran.
	var launches int64
	for _, s := range p.Sites {
		launches += s.Launches
	}
	if launches != rep.Stats.NumKernels {
		t.Fatalf("profiled %d launches, machine ran %d", launches, rep.Stats.NumKernels)
	}
}

// TestProfileMatchesLedger pins the agreement guarantee: per-unit
// transfer bytes and copy counts in the profile equal the communication
// ledger's totals, because the runtime feeds both at the same points.
func TestProfileMatchesLedger(t *testing.T) {
	for _, strat := range []core.Strategy{core.CGCMUnoptimized, core.CGCMOptimized} {
		rep, err := core.CompileAndRun("hot.c", hotLoop, core.Options{
			Strategy: strat,
			Profile:  true,
		})
		if err != nil {
			t.Fatalf("[%s] %v", strat, err)
		}
		// Fold the ledger by unit name (the profile keys transfers by
		// name, the ledger by base address).
		type totals struct{ hb, hc, db, dc int64 }
		ledger := map[string]*totals{}
		for i := range rep.Comm.Units {
			u := &rep.Comm.Units[i]
			tot := ledger[u.Name]
			if tot == nil {
				tot = &totals{}
				ledger[u.Name] = tot
			}
			tot.hb += u.BytesHtoD
			tot.hc += u.HtoDCopies
			tot.db += u.BytesDtoH
			tot.dc += u.DtoHCopies
		}
		profTot := rep.Profile.UnitTotals()
		for name, tot := range ledger {
			if tot.hb == 0 && tot.db == 0 {
				continue // unit never crossed the bus; profile has no row
			}
			pu, ok := profTot[name]
			if !ok {
				t.Fatalf("[%s] unit %q in ledger but not in profile", strat, name)
			}
			if pu.HtoDBytes != tot.hb || pu.HtoDCount != tot.hc ||
				pu.DtoHBytes != tot.db || pu.DtoHCount != tot.dc {
				t.Fatalf("[%s] unit %q: profile %+v != ledger %+v", strat, name, pu, *tot)
			}
		}
		for name := range profTot {
			if _, ok := ledger[name]; !ok {
				t.Fatalf("[%s] unit %q in profile but not in ledger", strat, name)
			}
		}
	}
}

// TestProfileRuntimeCallsTimed checks cgcm.* runtime-library calls are
// timed on the simulated clock and carry their call-site line.
func TestProfileRuntimeCallsTimed(t *testing.T) {
	rep, err := core.CompileAndRun("hot.c", hotLoop, core.Options{
		Strategy: core.CGCMUnoptimized,
		Profile:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile.RuntimeSeconds() <= 0 {
		t.Fatal("no runtime-library time attributed")
	}
	seen := map[string]bool{}
	for _, rc := range rep.Profile.Runtime {
		seen[rc.Call] = true
		if rc.Line == 0 {
			t.Fatalf("runtime call %s has no source line", rc.Call)
		}
	}
	for _, want := range []string{"cgcm.map", "cgcm.unmap", "cgcm.release"} {
		if !seen[want] {
			t.Fatalf("runtime calls missing %s (got %v)", want, seen)
		}
	}
}

// TestProfileOffByDefault ensures profiling stays opt-in.
func TestProfileOffByDefault(t *testing.T) {
	rep, err := core.CompileAndRun("hot.c", hotLoop, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile != nil {
		t.Fatal("Report.Profile set without Options.Profile")
	}
}
