package core_test

import (
	"strings"
	"testing"

	"cgcm/internal/bench"
	"cgcm/internal/core"
	"cgcm/internal/remarks"
	"cgcm/internal/trace"
)

// TestEveryMissedRemarkHasReasonAndLine compiles the whole benchmark
// suite with remarks on and pins the acceptance contract: a Missed
// remark without a machine-readable reason or a source anchor is
// useless to tooling.
func TestEveryMissedRemarkHasReasonAndLine(t *testing.T) {
	for _, p := range bench.All() {
		prog, err := core.Compile(p.Name, p.Source, core.Options{
			Strategy: core.CGCMOptimized,
			Remarks:  true,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, r := range prog.Remarks() {
			if r.Kind != remarks.Missed {
				continue
			}
			if r.Reason == remarks.ReasonNone {
				t.Errorf("%s: missed remark without reason: %s", p.Name, r)
			}
			if r.Line <= 0 {
				t.Errorf("%s: missed remark without source line: %s", p.Name, r)
			}
		}
	}
}

// TestCyclicUnitsCoveredByRemarks asserts the tentpole's coverage
// guarantee: every allocation unit the communication ledger classifies
// cyclic is named by at least one remark — either a compile-time remark
// whose unit label matches the allocation site, or the synthesized
// Runtime remark. Checked across demo programs, both CGCM strategies,
// and with map promotion ablated (the configuration that leaves the
// most units cyclic).
func TestCyclicUnitsCoveredByRemarks(t *testing.T) {
	programs := []string{"bicg", "atax", "jacobi-2d-imper", "gemm", "hotspot", "kmeans"}
	configs := []struct {
		name     string
		strategy core.Strategy
		ablate   core.PassSet
	}{
		{"unopt", core.CGCMUnoptimized, nil},
		{"opt", core.CGCMOptimized, nil},
		{"opt-no-mappromo", core.CGCMOptimized, core.PassSet{core.PassMapPromo: true}},
	}
	for _, name := range programs {
		p, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("program %s missing from suite", name)
		}
		for _, cfg := range configs {
			rep, err := core.CompileAndRun(p.Name, p.Source, core.Options{
				Strategy: cfg.strategy,
				Ablate:   cfg.ablate,
				Remarks:  true,
			})
			if err != nil {
				t.Fatalf("%s [%s]: %v", name, cfg.name, err)
			}
			for i := range rep.Comm.Units {
				u := &rep.Comm.Units[i]
				if u.Pattern != trace.PatternCyclic {
					continue
				}
				if !unitCovered(rep.Remarks, u) {
					t.Errorf("%s [%s]: cyclic unit %s (line %d) named by no remark",
						name, cfg.name, u.Name, u.Line)
				}
			}
		}
	}
}

// unitCovered reports whether any remark names the ledger unit: a
// runtime remark synthesized for it, or a compile-time remark whose
// unit label matches its allocation site.
func unitCovered(rs []remarks.Remark, u *trace.UnitStats) bool {
	for _, r := range rs {
		if r.Kind == remarks.Runtime && r.Line == u.Line && strings.HasPrefix(r.Unit, u.Name) {
			return true
		}
		if remarks.MatchesUnit(r.Unit, u.Name, u.Line) {
			return true
		}
	}
	return false
}

// TestLedgerCarriesAllocationLines pins the runtime plumbing the
// remarks cross-reference relies on: the interpreter stamps the
// allocation instruction's source line into the ledger for heap units.
func TestLedgerCarriesAllocationLines(t *testing.T) {
	src := `int main() {
	float *a = (float*)malloc(16 * 8);
	float *b = (float*)malloc(16 * 8);
	for (int i = 0; i < 16; i++) a[i] = 1.0 * i;
	for (int i = 0; i < 16; i++) b[i] = a[i] + 1.0;
	float s = 0.0;
	for (int i = 0; i < 16; i++) s += b[i];
	print_float(s);
	return 0;
}`
	rep, err := core.CompileAndRun("lines.c", src, core.Options{
		Strategy: core.CGCMUnoptimized,
		Remarks:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{2: false, 3: false}
	for i := range rep.Comm.Units {
		u := &rep.Comm.Units[i]
		if _, ok := want[u.Line]; ok {
			want[u.Line] = true
		}
	}
	for line, seen := range want {
		if !seen {
			t.Errorf("no ledger unit carries allocation line %d:\n%s", line, rep.Comm)
		}
	}
}

// TestReportRemarksDeterministic runs the same program twice and
// requires identical remark streams — the property the byte-identical
// CLI output test builds on, checked at the API layer.
func TestReportRemarksDeterministic(t *testing.T) {
	p, ok := bench.ByName("bicg")
	if !ok {
		t.Fatal("bicg missing from suite")
	}
	runOnce := func() []remarks.Remark {
		rep, err := core.CompileAndRun(p.Name, p.Source, core.Options{
			Strategy: core.CGCMOptimized,
			Remarks:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Remarks
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("remark counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("remark %d differs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}
