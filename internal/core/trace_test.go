package core_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"cgcm/internal/core"
	"cgcm/internal/trace"
)

// cyclicSrc is the Figure 2 shape: a timestep loop repeatedly launching a
// kernel over one malloc'd vector. The init loop uses rand_int so only
// the timestep loop parallelizes, keeping the communication pattern pure.
const cyclicSrc = `
int main() {
	float *v = (float*)malloc(1024 * 8);
	for (int i = 0; i < 1024; i++) v[i] = (float)rand_int(100);
	for (int t = 0; t < 6; t++) {
		for (int i = 0; i < 1024; i++) v[i] = v[i] * 1.01 + 0.5;
	}
	print_float(v[17]);
	free(v);
	return 0;
}`

// TestLedgerCyclicVsAcyclic is the paper's §5 claim made checkable per
// allocation unit: unoptimized CGCM ping-pongs the vector every epoch
// (cyclic); the communication optimizations hoist the transfers out of
// the loop (acyclic).
func TestLedgerCyclicVsAcyclic(t *testing.T) {
	un, err := core.CompileAndRun("fig2.c", cyclicSrc, core.Options{Strategy: core.CGCMUnoptimized})
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.CompileAndRun("fig2.c", cyclicSrc, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}

	u := un.Comm.Unit("malloc")
	if u == nil {
		t.Fatalf("unoptimized ledger has no malloc unit:\n%s", un.Comm)
	}
	if u.Pattern != trace.PatternCyclic {
		t.Errorf("unoptimized pattern = %s, want cyclic:\n%s", u.Pattern, un.Comm)
	}
	if u.RoundTrips == 0 {
		t.Errorf("unoptimized round trips = 0, want > 0:\n%s", un.Comm)
	}

	o := op.Comm.Unit("malloc")
	if o == nil {
		t.Fatalf("optimized ledger has no malloc unit:\n%s", op.Comm)
	}
	if o.Pattern != trace.PatternAcyclic {
		t.Errorf("optimized pattern = %s, want acyclic:\n%s", o.Pattern, op.Comm)
	}
	if o.RoundTrips != 0 {
		t.Errorf("optimized round trips = %d, want 0", o.RoundTrips)
	}
	if o.HtoDCopies != 1 || o.DtoHCopies != 1 {
		t.Errorf("optimized copies = %d/%d, want 1/1", o.HtoDCopies, o.DtoHCopies)
	}
	// The optimization must also show up as skipped redundant copies.
	if o.ResidencySkips+o.EpochSkips == 0 {
		t.Error("optimized run shows no skipped copies")
	}
	if un.Comm.Cyclic() == 0 || op.Comm.Cyclic() != 0 {
		t.Errorf("ledger summary: unopt cyclic %d, opt cyclic %d", un.Comm.Cyclic(), op.Comm.Cyclic())
	}
}

// TestTracerEndToEnd runs with a Tracer sink and checks the structured
// spans: kernels on the GPU lane, unit-tagged transfers, runtime-call
// instants, and a valid Perfetto export.
func TestTracerEndToEnd(t *testing.T) {
	tr := trace.New()
	rep, err := core.CompileAndRun("fig2.c", cyclicSrc, core.Options{
		Strategy: core.CGCMOptimized, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) == 0 {
		t.Fatal("no spans collected")
	}
	kinds := map[trace.Kind]int{}
	var taggedXfer bool
	for _, s := range rep.Spans {
		kinds[s.Kind]++
		if (s.Kind == trace.KindHtoD || s.Kind == trace.KindDtoH) && s.Unit == "malloc" {
			taggedXfer = true
		}
		if s.End < s.Start {
			t.Errorf("span ends before start: %+v", s)
		}
	}
	if kinds[trace.KindKernel] == 0 || kinds[trace.KindHtoD] == 0 || kinds[trace.KindMap] == 0 {
		t.Errorf("span kinds missing: %v", kinds)
	}
	if !taggedXfer {
		t.Error("no transfer span tagged with its allocation unit")
	}
	// The sink received the merged run plus the compile phases.
	if len(tr.Spans()) != len(rep.Spans) {
		t.Errorf("sink has %d spans, report has %d", len(tr.Spans()), len(rep.Spans))
	}
	if len(tr.Phases()) == 0 {
		t.Error("sink received no compile phases")
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	if len(doc.TraceEvents) < len(rep.Spans) {
		t.Errorf("chrome export has %d events for %d spans", len(doc.TraceEvents), len(rep.Spans))
	}
}

// TestReportPhases: every strategy records its compile phases with the
// pass activity counters.
func TestReportPhases(t *testing.T) {
	rep, err := core.CompileAndRun("fig2.c", cyclicSrc, core.Options{Strategy: core.CGCMOptimized})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]trace.PhaseSpan{}
	for _, ph := range rep.Phases {
		got[ph.Name] = ph
	}
	for _, want := range []string{"parse", "sema", "irbuild", "constfold", "doall", "commmgmt", "gluekernel", "allocapromo", "mappromo"} {
		if _, ok := got[want]; !ok {
			t.Errorf("phase %q missing (got %v)", want, rep.Phases)
		}
	}
	if got["doall"].Activity == 0 {
		t.Error("doall phase reports no parallelized loops")
	}
	if got["mappromo"].Activity != rep.Promotions {
		t.Errorf("mappromo activity %d != Promotions %d", got["mappromo"].Activity, rep.Promotions)
	}

	seq, err := core.CompileAndRun("fig2.c", cyclicSrc, core.Options{Strategy: core.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range seq.Phases {
		switch ph.Name {
		case "doall", "commmgmt", "gluekernel", "allocapromo", "mappromo":
			t.Errorf("sequential compile ran pass %q", ph.Name)
		}
	}
}

// TestPassSetFlagValue exercises the CLI-facing PassSet parser.
func TestPassSetFlagValue(t *testing.T) {
	var s core.PassSet
	if err := s.Set("gluekernel,mappromo"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("allocapromo"); err != nil {
		t.Fatal(err)
	}
	if !s.Has(core.PassGlueKernel) || !s.Has(core.PassMapPromo) || !s.Has(core.PassAllocaPromo) {
		t.Errorf("set = %v", s)
	}
	if s.Has(core.PassDOALL) {
		t.Error("doall should not be set")
	}
	if got := s.String(); got != "allocapromo,gluekernel,mappromo" {
		t.Errorf("String() = %q", got)
	}
	if err := s.Set("bogus"); err == nil {
		t.Error("unknown pass accepted")
	}
	if err := s.Set("none"); err != nil || s.String() != "" {
		t.Errorf("none did not clear: %v %q", err, s.String())
	}
}

// TestTracingDisabledIsFree: without a tracer, no spans or events are
// collected, but the ledger and phases are still there.
func TestTracingDisabledIsFree(t *testing.T) {
	rep, err := core.CompileAndRun("fig2.c", cyclicSrc, core.Options{Strategy: core.CGCMUnoptimized})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spans != nil {
		t.Error("spans collected without tracing")
	}
	if len(rep.Comm.Units) == 0 || len(rep.Phases) == 0 {
		t.Error("ledger/phases missing when tracing is off")
	}
}

// TestFaultSpan: a faulting program leaves a fault marker on the traced
// timeline.
func TestFaultSpan(t *testing.T) {
	tr := trace.New()
	src := `
int main() {
	int *p = (int*)0;
	return p[4];
}`
	_, err := core.CompileAndRun("fault.c", src, core.Options{Strategy: core.Sequential, Tracer: tr})
	if err == nil {
		t.Fatal("program did not fault")
	}
	var found bool
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindFault {
			found = true
		}
	}
	if !found {
		t.Error("no fault span emitted")
	}
}
