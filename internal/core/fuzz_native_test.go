package core_test

import (
	"testing"

	"cgcm/internal/bench"
	"cgcm/internal/core"
)

// FuzzCompile pushes arbitrary source through the whole pipeline —
// lexer, parser, type checker, IR construction, DOALL, and every
// communication-optimization pass. The contract: Compile returns an
// error for bad input and never panics. Internal-consistency panics
// (*ir.InternalError) are recovered into typed errors by Compile
// itself; anything else escaping is a finding.
//
// Seeded with the full benchmark suite so mutation starts from source
// that reaches the optimizer, not just the parser's error paths.
func FuzzCompile(f *testing.F) {
	for _, p := range bench.All() {
		f.Add(p.Source)
	}
	f.Add(vecScale)
	f.Add(triVec)
	f.Add("int main() { return 0; }")
	f.Add("int main() { for (int i = 0; i < 4; i++) { } return 0; }")
	f.Fuzz(func(t *testing.T, src string) {
		for _, s := range []core.Strategy{core.Sequential, core.CGCMOptimized} {
			prog, err := core.Compile("fuzz.c", src, core.Options{Strategy: s})
			if err == nil && prog == nil {
				t.Fatalf("%s: nil program with nil error", s)
			}
		}
	})
}
