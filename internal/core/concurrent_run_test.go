package core_test

import (
	"reflect"
	"sync"
	"testing"

	"cgcm/internal/bench"
	"cgcm/internal/core"
	"cgcm/internal/trace"
)

// TestConcurrentRunsIdentical: Run is read-only on the compiled Program,
// so many goroutines running the same Program concurrently must produce
// byte-identical Reports. Run under -race this also proves the absence
// of data races on shared compile state.
func TestConcurrentRunsIdentical(t *testing.T) {
	p, ok := bench.ByName("jacobi-2d-imper")
	if !ok {
		t.Fatal("jacobi missing")
	}
	tr := trace.New()
	prog, err := core.Compile(p.Name, p.Source, core.Options{Strategy: core.CGCMOptimized, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Kernels() == 0 || prog.LaunchSites() == 0 {
		t.Fatalf("compile census empty: kernels=%d launchSites=%d", prog.Kernels(), prog.LaunchSites())
	}

	const n = 4
	reps := make([]*core.Report, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := prog.Run()
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			reps[i] = rep
		}(i)
	}
	wg.Wait()

	base := reps[0]
	if base == nil {
		t.Fatal("first run failed")
	}
	for i := 1; i < n; i++ {
		r := reps[i]
		if r == nil {
			continue
		}
		if r.Output != base.Output {
			t.Errorf("run %d output diverged", i)
		}
		if r.Stats != base.Stats {
			t.Errorf("run %d stats diverged: %+v vs %+v", i, r.Stats, base.Stats)
		}
		if r.RTStats != base.RTStats {
			t.Errorf("run %d runtime stats diverged: %+v vs %+v", i, r.RTStats, base.RTStats)
		}
		if !reflect.DeepEqual(r.Comm, base.Comm) {
			t.Errorf("run %d communication ledger diverged:\n%s\nvs\n%s", i, r.Comm, base.Comm)
		}
		if !reflect.DeepEqual(r.Spans, base.Spans) {
			t.Errorf("run %d spans diverged (%d vs %d)", i, len(r.Spans), len(base.Spans))
		}
		if r.Promotions != base.Promotions || r.GlueKernels != base.GlueKernels ||
			r.AllocaPromotions != base.AllocaPromotions {
			t.Errorf("run %d pass counters diverged", i)
		}
	}
	// The shared sink collected every run without interleaving: a whole
	// multiple of one run's spans.
	if got := len(tr.Spans()); got != n*len(base.Spans) {
		t.Errorf("sink has %d spans, want %d runs x %d", got, n, len(base.Spans))
	}
}
