package core_test

import (
	"testing"

	"cgcm/internal/core"
)

// aosProgram iterates a physics step over an array of structs — the AoS
// layout PARSEC-style codes use, which named-region techniques cannot
// annotate but CGCM handles at allocation-unit granularity.
const aosProgram = `
struct Particle {
	float pos;
	float vel;
	float mass;
};
int main() {
	struct Particle *ps = (struct Particle*)malloc(64 * sizeof(struct Particle));
	for (int i = 0; i < 64; i++) {
		ps[i].pos = (float)i;
		ps[i].vel = 1.0 + (float)(i % 4);
		ps[i].mass = 2.0;
	}
	for (int t = 0; t < 12; t++) {
		for (int i = 0; i < 64; i++) {
			ps[i].vel = ps[i].vel + 0.1 / ps[i].mass;
			ps[i].pos = ps[i].pos + ps[i].vel * 0.1;
		}
	}
	float s = 0.0;
	for (int i = 0; i < 64; i++) s += ps[i].pos;
	print_float(s);
	free(ps);
	return 0;
}`

func TestArrayOfStructsParallelized(t *testing.T) {
	seq := compileRun(t, "aos.c", aosProgram, core.Options{Strategy: core.Sequential})
	for _, s := range []core.Strategy{core.InspectorExecutor, core.CGCMUnoptimized, core.CGCMOptimized} {
		rep := compileRun(t, "aos.c", aosProgram, core.Options{Strategy: s})
		if rep.Output != seq.Output {
			t.Errorf("%s diverged: %q vs %q", s, rep.Output, seq.Output)
		}
		if rep.DOALLLoopsParallelized == 0 {
			t.Errorf("%s: AoS loop not parallelized", s)
		}
	}
	// Map promotion must hoist the particle array out of the timestep
	// loop despite the strided field accesses.
	op := compileRun(t, "aos.c", aosProgram, core.Options{Strategy: core.CGCMOptimized})
	un := compileRun(t, "aos.c", aosProgram, core.Options{Strategy: core.CGCMUnoptimized})
	if op.Stats.NumDtoH >= un.Stats.NumDtoH {
		t.Errorf("AoS array not promoted: DtoH %d vs %d", op.Stats.NumDtoH, un.Stats.NumDtoH)
	}
}

// manual kernel over structs, with the whole unit (all fields) mapped by
// one allocation-unit transfer.
const aosManual = `
struct Option {
	float S;
	float K;
	float price;
};
__global__ void priceAll(struct Option *opts, int n) {
	int i = tid();
	if (i < n) {
		opts[i].price = opts[i].S - opts[i].K * 0.5;
	}
}
int main() {
	struct Option *opts = (struct Option*)malloc(32 * sizeof(struct Option));
	for (int i = 0; i < 32; i++) {
		opts[i].S = (float)(i + 10);
		opts[i].K = (float)i;
	}
	priceAll<<<1, 32>>>(opts, 32);
	float s = 0.0;
	for (int i = 0; i < 32; i++) s += opts[i].price;
	print_float(s);
	free(opts);
	return 0;
}`

func TestStructKernelManaged(t *testing.T) {
	rep := compileRun(t, "aosmanual.c", aosManual, core.Options{
		Strategy: core.CGCMUnoptimized, Ablate: core.PassSet{core.PassDOALL: true},
	})
	// sum of (i+10) - i/2 for i in 0..31 = 320 + sum(i/2) = 320 + 0.5*496 = 568
	if rep.Output != "568\n" {
		t.Errorf("output %q, want 568", rep.Output)
	}
	// The struct array moves as ONE unit (plus nothing else).
	if rep.Stats.NumHtoD != 1 || rep.Stats.NumDtoH != 1 {
		t.Errorf("transfers %d/%d, want 1/1 (one allocation unit)",
			rep.Stats.NumHtoD, rep.Stats.NumDtoH)
	}
	wantBytes := int64(32 * 24)
	if rep.Stats.BytesHtoD != wantBytes {
		t.Errorf("HtoD bytes = %d, want %d (whole unit)", rep.Stats.BytesHtoD, wantBytes)
	}
}
