package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cgcm/internal/core"
)

// exprGen generates random integer arithmetic expressions over a fixed
// set of variables, together with a Go evaluator producing the expected
// value — a differential test of the whole stack (parser, sema, irbuild,
// constant folding, interpreter).
type exprGen struct {
	rng  *rand.Rand
	vars map[string]int64
}

func (g *exprGen) gen(depth int) (src string, val int64) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			v := int64(g.rng.Intn(100))
			return fmt.Sprintf("%d", v), v
		default:
			names := []string{"a", "b", "c", "d"}
			n := names[g.rng.Intn(len(names))]
			return n, g.vars[n]
		}
	}
	ls, lv := g.gen(depth - 1)
	rs, rv := g.gen(depth - 1)
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	case 3:
		if rv == 0 {
			return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
		}
		return fmt.Sprintf("(%s / %s)", ls, rs), lv / rv
	case 4:
		if rv == 0 {
			return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
		}
		return fmt.Sprintf("(%s %% %s)", ls, rs), lv % rv
	case 5:
		b := int64(0)
		if lv < rv {
			b = 1
		}
		return fmt.Sprintf("(%s < %s ? 1 : 0)", ls, rs), b
	default:
		return fmt.Sprintf("(%s & %s)", ls, rs), lv & rv
	}
}

func TestFuzzExpressionsAgainstNativeGo(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		g := &exprGen{rng: rng, vars: map[string]int64{
			"a": int64(rng.Intn(50)),
			"b": int64(rng.Intn(50)) - 25,
			"c": int64(rng.Intn(10)) + 1,
			"d": int64(rng.Intn(1000)),
		}}
		var exprs []string
		var want strings.Builder
		for i := 0; i < 4; i++ {
			src, val := g.gen(4)
			exprs = append(exprs, src)
			fmt.Fprintf(&want, "%d\n", val)
		}
		prog := fmt.Sprintf(`
int main() {
	int a = %d;
	int b = %d;
	int c = %d;
	int d = %d;
	print_int(%s);
	print_int(%s);
	print_int(%s);
	print_int(%s);
	return 0;
}`, g.vars["a"], g.vars["b"], g.vars["c"], g.vars["d"],
			exprs[0], exprs[1], exprs[2], exprs[3])

		rep, err := core.CompileAndRun("fuzz.c", prog, core.Options{Strategy: core.Sequential})
		if err != nil {
			t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, prog)
		}
		if rep.Output != want.String() {
			t.Fatalf("trial %d: got %q want %q\nprogram:\n%s", trial, rep.Output, want.String(), prog)
		}
	}
}

// TestFuzzLoopsAcrossStrategies generates random (guaranteed-DOALL and
// not-necessarily-DOALL) loops and checks that all four systems agree
// with each other — the core soundness property: whatever the
// parallelizer and the communication optimizer decide, output never
// changes.
func TestFuzzLoopsAcrossStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	ops := []string{"+", "-", "*"}
	for trial := 0; trial < 30; trial++ {
		n := 16 + rng.Intn(48)
		stride := 1 + rng.Intn(3)
		timesteps := 1 + rng.Intn(6)
		op1 := ops[rng.Intn(len(ops))]
		indexOps := []string{"+", "-"}
		op2 := indexOps[rng.Intn(len(indexOps))]
		shift := rng.Intn(3) - 1 // -1, 0, or 1: neighbor reads of b
		scale := 1 + rng.Intn(4)

		prog := fmt.Sprintf(`
int main() {
	float *a = (float*)malloc(%d * 8);
	float *b = (float*)malloc(%d * 8);
	for (int i = 0; i < %d; i++) a[i] = (float)(i %% 7) * 0.5;
	for (int i = 0; i < %d; i++) b[i] = (float)(i %% 5) + 1.0;
	for (int t = 0; t < %d; t++) {
		for (int i = 2; i < %d; i += %d) {
			a[i] = (a[i] %s b[i %s %d]) + (float)%d * 0.25;
		}
	}
	float s = 0.0;
	for (int i = 0; i < %d; i++) s += a[i] * (float)((i %% 3) + 1);
	print_float(s);
	free(a); free(b);
	return 0;
}`, n+2, n+2, n+2, n+2, timesteps, n, stride, op1, op2, iabs(shift)+1, scale, n)

		var ref string
		for _, s := range []core.Strategy{core.Sequential, core.InspectorExecutor, core.CGCMUnoptimized, core.CGCMOptimized} {
			rep, err := core.CompileAndRun("fuzzloop.c", prog, core.Options{Strategy: s})
			if err != nil {
				t.Fatalf("trial %d [%s]: %v\nprogram:\n%s", trial, s, err, prog)
			}
			if s == core.Sequential {
				ref = rep.Output
			} else if rep.Output != ref {
				t.Fatalf("trial %d [%s]: output %q != sequential %q\nprogram:\n%s",
					trial, s, rep.Output, ref, prog)
			}
		}
	}
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestFuzzStructLayouts randomizes struct field mixes and verifies field
// store/load round-trips and sizeof consistency end to end.
func TestFuzzStructLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []string{"char", "int", "float"}
	for trial := 0; trial < 25; trial++ {
		nf := 2 + rng.Intn(5)
		var fields, stores, checks strings.Builder
		var want strings.Builder
		for i := 0; i < nf; i++ {
			k := kinds[rng.Intn(len(kinds))]
			fmt.Fprintf(&fields, "\t%s f%d;\n", k, i)
			switch k {
			case "char":
				v := 32 + rng.Intn(90)
				fmt.Fprintf(&stores, "\ts.f%d = (char)%d;\n", i, v)
				fmt.Fprintf(&checks, "\tprint_int((int)s.f%d);\n", i)
				fmt.Fprintf(&want, "%d\n", v)
			case "int":
				v := rng.Intn(100000) - 50000
				fmt.Fprintf(&stores, "\ts.f%d = %d;\n", i, v)
				fmt.Fprintf(&checks, "\tprint_int(s.f%d);\n", i)
				fmt.Fprintf(&want, "%d\n", v)
			case "float":
				v := float64(rng.Intn(1000)) / 4
				fmt.Fprintf(&stores, "\ts.f%d = %g;\n", i, v)
				fmt.Fprintf(&checks, "\tprint_float(s.f%d);\n", i)
				fmt.Fprintf(&want, "%g\n", v)
			}
		}
		prog := fmt.Sprintf(`
struct T {
%s};
int main() {
	struct T s;
%s%s	return 0;
}`, fields.String(), stores.String(), checks.String())
		rep, err := core.CompileAndRun("fuzzstruct.c", prog, core.Options{Strategy: core.Sequential})
		if err != nil {
			t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, prog)
		}
		if rep.Output != want.String() {
			t.Fatalf("trial %d: got %q want %q\nprogram:\n%s", trial, rep.Output, want.String(), prog)
		}
	}
}
