package core_test

import (
	"fmt"
	"runtime"
	"testing"

	"cgcm/internal/core"
	"cgcm/internal/faultinject"
	"cgcm/internal/remarks"
)

// triVec streams three separately-malloc'd vectors through GPU loops in
// two passes, so a capacity-limited device has to evict the
// least-recently-used unit to make room and re-upload it on the second
// pass. Each vector is 512 floats = 4096 bytes.
const triVec = `
int main() {
	int n = 512;
	float *a = (float*)malloc(n * sizeof(float));
	float *b = (float*)malloc(n * sizeof(float));
	float *c = (float*)malloc(n * sizeof(float));
	for (int i = 0; i < n; i++) a[i] = (float)i;
	for (int i = 0; i < n; i++) b[i] = (float)(i * 2);
	for (int i = 0; i < n; i++) c[i] = (float)(i * 3);
	for (int pass = 0; pass < 2; pass++) {
		for (int t = 0; t < 3; t++) {
			for (int i = 0; i < n; i++) a[i] = a[i] * 1.5 + 1.0;
		}
		for (int t = 0; t < 3; t++) {
			for (int i = 0; i < n; i++) b[i] = b[i] * 0.5 + 2.0;
		}
		for (int t = 0; t < 3; t++) {
			for (int i = 0; i < n; i++) c[i] = c[i] + a[i] * 0.25;
		}
	}
	float sum = 0.0;
	for (int i = 0; i < n; i++) sum += a[i] + b[i] + c[i];
	print_float(sum / 1000000.0);
	free(a);
	free(b);
	free(c);
	return 0;
}`

// mustSpec parses a fault spec or fails the test.
func mustSpec(t *testing.T, text string) *faultinject.Spec {
	t.Helper()
	s, err := faultinject.ParseSpec(text)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", text, err)
	}
	return s
}

// faultFree runs the program once without faults to establish the
// reference output the resilience ladder must reproduce bit-for-bit.
func faultFree(t *testing.T, name, src string) *core.Report {
	t.Helper()
	return compileRun(t, name, src, core.Options{Strategy: core.CGCMOptimized})
}

// TestOOMAtEverySite kills the device allocator persistently at every
// call index in turn. Wherever the OOM lands — first Map, mid-run,
// or past the last allocation — the output must match the fault-free
// run exactly.
func TestOOMAtEverySite(t *testing.T) {
	base := faultFree(t, "trivec.c", triVec)
	for k := 0; k < 8; k++ {
		spec := mustSpec(t, fmt.Sprintf("fail=alloc@%d", k))
		rep := compileRun(t, "trivec.c", triVec, core.Options{
			Strategy:  core.CGCMOptimized,
			FaultSpec: spec,
		})
		if rep.Output != base.Output || rep.Exit != base.Exit {
			t.Errorf("fail=alloc@%d: output diverged:\n got %q\nwant %q", k, rep.Output, base.Output)
		}
		// An OOM before the last device allocation must have tripped the
		// degradation ladder; the program still completes via CPU fallback.
		if rep.Stats.InjectedFaults > 0 && !rep.RTStats.Degraded {
			t.Errorf("fail=alloc@%d: %d faults injected but runtime never degraded",
				k, rep.Stats.InjectedFaults)
		}
		if rep.RTStats.Degraded && rep.Stats.FallbackKernels == 0 && rep.Stats.NumKernels > 0 {
			t.Errorf("fail=alloc@%d: degraded but no kernels ran on the CPU", k)
		}
	}
}

// TestTransientTransferFaults injects a coin-flip fault on every
// transfer in both directions. Bounded retry must absorb all of them:
// identical output, retries recorded, and (for this seed) no
// degradation.
func TestTransientTransferFaults(t *testing.T) {
	base := faultFree(t, "trivec.c", triVec)
	rep := compileRun(t, "trivec.c", triVec, core.Options{
		Strategy:  core.CGCMOptimized,
		FaultSpec: mustSpec(t, "seed=7,htod=0.5,dtoh=0.5"),
	})
	if rep.Output != base.Output || rep.Exit != base.Exit {
		t.Fatalf("transient transfer faults changed output:\n got %q\nwant %q", rep.Output, base.Output)
	}
	if rep.Stats.InjectedFaults == 0 {
		t.Fatal("spec injected no faults; test is vacuous")
	}
	if rep.RTStats.Retries == 0 {
		t.Errorf("faults injected (%d) but no retries recorded", rep.Stats.InjectedFaults)
	}
	if rep.Stats.Wall <= base.Stats.Wall {
		t.Errorf("faulted wall %.9f not slower than fault-free %.9f (retries are free?)",
			rep.Stats.Wall, base.Stats.Wall)
	}
}

// TestZeroCapacityFallsBackToCPU gives the device essentially no
// memory. The very first Map cannot allocate, nothing is evictable, so
// the runtime must degrade to CPU fallback — and still produce the
// fault-free output.
func TestZeroCapacityFallsBackToCPU(t *testing.T) {
	base := faultFree(t, "trivec.c", triVec)
	rep := compileRun(t, "trivec.c", triVec, core.Options{
		Strategy:    core.CGCMOptimized,
		GPUMemBytes: 1,
	})
	if rep.Output != base.Output || rep.Exit != base.Exit {
		t.Fatalf("zero-capacity output diverged:\n got %q\nwant %q", rep.Output, base.Output)
	}
	if !rep.RTStats.Degraded {
		t.Fatal("1-byte device did not degrade to CPU fallback")
	}
	if rep.Stats.FallbackKernels == 0 {
		t.Error("degraded run executed no fallback kernels")
	}
	if rep.Stats.NumHtoD != 0 {
		t.Errorf("degraded-from-the-start run still did %d HtoD transfers", rep.Stats.NumHtoD)
	}
}

// TestCapacityEvictionStaysOnGPU sizes the device to hold two of the
// three vectors. Unoptimized CGCM unmaps after every launch, so every
// unit is an eviction candidate between kernels: the runtime must evict
// the LRU cached unit instead of degrading, re-uploading it when it is
// touched again.
func TestCapacityEvictionStaysOnGPU(t *testing.T) {
	base := compileRun(t, "trivec.c", triVec, core.Options{Strategy: core.CGCMUnoptimized})
	rep := compileRun(t, "trivec.c", triVec, core.Options{
		Strategy:    core.CGCMUnoptimized,
		GPUMemBytes: 8 * 1024,
	})
	if rep.Output != base.Output || rep.Exit != base.Exit {
		t.Fatalf("eviction run output diverged:\n got %q\nwant %q", rep.Output, base.Output)
	}
	if rep.RTStats.Evictions == 0 {
		t.Fatalf("capacity %d forced no evictions; test is vacuous", 8*1024)
	}
	if rep.RTStats.EvictionBytes == 0 {
		t.Error("evictions recorded but no bytes accounted")
	}
	// Eviction is the first rung of the ladder: the run should have
	// stayed on the GPU.
	if rep.RTStats.Degraded {
		t.Error("evictable pressure degraded the device; ladder skipped a rung")
	}
	if rep.Stats.NumKernels == 0 {
		t.Error("no kernels ran on the GPU despite staying resident")
	}
}

// TestPromotionPinsUnitsThenDegrades runs the same capacity under the
// optimized strategy: map promotion pins all three vectors across the
// outer loop, so nothing is evictable mid-promotion and the runtime
// must walk the whole ladder — evict what it can, then degrade — while
// still producing the exact fault-free output (the degrade path flushes
// dirty device data through the rescue channel).
func TestPromotionPinsUnitsThenDegrades(t *testing.T) {
	base := faultFree(t, "trivec.c", triVec)
	rep := compileRun(t, "trivec.c", triVec, core.Options{
		Strategy:    core.CGCMOptimized,
		GPUMemBytes: 8 * 1024,
	})
	if rep.Output != base.Output || rep.Exit != base.Exit {
		t.Fatalf("mid-run degrade output diverged:\n got %q\nwant %q", rep.Output, base.Output)
	}
	if !rep.RTStats.Degraded {
		t.Skip("runtime satisfied promoted working set without degrading; nothing to check")
	}
	if rep.Stats.FallbackKernels == 0 {
		t.Error("degraded mid-run but no kernels ran on the CPU")
	}
}

// TestPersistentFaultsDegradeLosslessly walks the persistent-failure
// scenarios: a dead launcher, a dead upload engine, and a dead download
// engine. Every one must end in CPU fallback with identical output —
// the dirty-data rescue channel makes degradation lossless even when
// normal DtoH is the thing that died.
func TestPersistentFaultsDegradeLosslessly(t *testing.T) {
	base := faultFree(t, "trivec.c", triVec)
	for _, spec := range []string{"fail=launch@0", "fail=launch@2", "fail=htod@1"} {
		rep := compileRun(t, "trivec.c", triVec, core.Options{
			Strategy:  core.CGCMOptimized,
			FaultSpec: mustSpec(t, spec),
		})
		if rep.Output != base.Output || rep.Exit != base.Exit {
			t.Errorf("%s: output diverged:\n got %q\nwant %q", spec, rep.Output, base.Output)
			continue
		}
		if !rep.RTStats.Degraded {
			t.Errorf("%s: persistent fault did not degrade the device", spec)
		}
	}
}

// TestPersistentDtoHUsesRescueChannel: a dead download engine is the one
// persistent fault that need not kill the device — every copyback can
// go over the slow reliable rescue channel instead, so the run stays on
// the GPU with identical output.
func TestPersistentDtoHUsesRescueChannel(t *testing.T) {
	base := faultFree(t, "trivec.c", triVec)
	rep := compileRun(t, "trivec.c", triVec, core.Options{
		Strategy:  core.CGCMOptimized,
		FaultSpec: mustSpec(t, "fail=dtoh@0"),
	})
	if rep.Output != base.Output || rep.Exit != base.Exit {
		t.Fatalf("dead-DtoH output diverged:\n got %q\nwant %q", rep.Output, base.Output)
	}
	if rep.RTStats.RescueCopies == 0 {
		t.Error("dead download engine but no rescue copies recorded")
	}
	if rep.RTStats.Degraded {
		t.Error("runtime degraded despite the rescue channel covering DtoH")
	}
	if rep.Stats.Wall <= base.Stats.Wall {
		t.Errorf("rescue-channel wall %.9f not slower than fault-free %.9f",
			rep.Stats.Wall, base.Stats.Wall)
	}
}

// TestResilienceAcrossStrategies checks the output invariant holds for
// the unoptimized strategy too — cyclic communication exercises the
// fault paths far more often than promoted acyclic communication.
func TestResilienceAcrossStrategies(t *testing.T) {
	for _, s := range []core.Strategy{core.CGCMUnoptimized, core.CGCMOptimized} {
		base := compileRun(t, "trivec.c", triVec, core.Options{Strategy: s})
		rep := compileRun(t, "trivec.c", triVec, core.Options{
			Strategy:    s,
			GPUMemBytes: 8 * 1024,
			FaultSpec:   mustSpec(t, "seed=3,htod=0.25,dtoh=0.25,alloc=0.1"),
		})
		if rep.Output != base.Output || rep.Exit != base.Exit {
			t.Errorf("%s: output diverged under faults:\n got %q\nwant %q", s, rep.Output, base.Output)
		}
	}
}

// TestFaultDeterminismAcrossWorkers is the soak: the same fault seed
// and capacity must yield byte-identical reports no matter how many
// worker goroutines execute kernel threads, because every fault
// decision happens on the goroutine driving the machine.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	opts := func(workers int) core.Options {
		return core.Options{
			Strategy:    core.CGCMOptimized,
			Workers:     workers,
			GPUMemBytes: 8 * 1024,
			FaultSpec:   mustSpec(t, "seed=11,htod=0.3,dtoh=0.3"),
			Remarks:     true,
		}
	}
	ref := compileRun(t, "trivec.c", triVec, opts(1))
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		rep := compileRun(t, "trivec.c", triVec, opts(w))
		if rep.Output != ref.Output || rep.Exit != ref.Exit {
			t.Errorf("workers=%d: output diverged from workers=1", w)
		}
		if rep.Stats != ref.Stats {
			t.Errorf("workers=%d: machine stats diverged:\n got %+v\nwant %+v", w, rep.Stats, ref.Stats)
		}
		if rep.RTStats != ref.RTStats {
			t.Errorf("workers=%d: runtime stats diverged:\n got %+v\nwant %+v", w, rep.RTStats, ref.RTStats)
		}
		if got, want := rep.Comm.String(), ref.Comm.String(); got != want {
			t.Errorf("workers=%d: communication ledger diverged:\n got %s\nwant %s", w, got, want)
		}
		if got, want := fmt.Sprintf("%v", rep.Remarks), fmt.Sprintf("%v", ref.Remarks); got != want {
			t.Errorf("workers=%d: remarks diverged:\n got %s\nwant %s", w, got, want)
		}
	}
}

// TestResilienceRemarks checks the fault model explains itself through
// the remarks engine: evictions produce device-oom remarks naming the
// unit, degradation produces a device-failure remark.
func TestResilienceRemarks(t *testing.T) {
	evict := compileRun(t, "trivec.c", triVec, core.Options{
		Strategy:    core.CGCMUnoptimized,
		GPUMemBytes: 8 * 1024,
		Remarks:     true,
	})
	if evict.RTStats.Evictions == 0 {
		t.Fatal("no evictions; remark test is vacuous")
	}
	if !hasReason(evict.Remarks, remarks.ReasonDeviceOOM) {
		t.Errorf("eviction run produced no device-oom remark; remarks: %v", evict.Remarks)
	}

	degraded := compileRun(t, "trivec.c", triVec, core.Options{
		Strategy:  core.CGCMOptimized,
		FaultSpec: mustSpec(t, "fail=launch@0"),
		Remarks:   true,
	})
	if !degraded.RTStats.Degraded {
		t.Fatal("fail=launch@0 did not degrade; remark test is vacuous")
	}
	if !hasReason(degraded.Remarks, remarks.ReasonDeviceFailure) {
		t.Errorf("degraded run produced no device-failure remark; remarks: %v", degraded.Remarks)
	}
}

func hasReason(rs []remarks.Remark, want remarks.Reason) bool {
	for _, r := range rs {
		if r.Reason == want {
			return true
		}
	}
	return false
}

// TestDefaultRunsUnaffected pins the zero-cost-when-disabled property:
// with no fault spec and no capacity, reports are identical to a run
// that never imported the fault model (counters all zero).
func TestDefaultRunsUnaffected(t *testing.T) {
	rep := faultFree(t, "trivec.c", triVec)
	if rep.Stats.InjectedFaults != 0 || rep.Stats.FallbackKernels != 0 ||
		rep.RTStats.Evictions != 0 || rep.RTStats.Retries != 0 ||
		rep.RTStats.RescueCopies != 0 || rep.RTStats.Degraded {
		t.Errorf("fault-free run shows resilience activity: machine %+v runtime %+v",
			rep.Stats, rep.RTStats)
	}
}
