// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6), plus ablations of the design choices DESIGN.md calls
// out. "ns/op" here is host time to run the simulation; the reproduced
// results are the custom metrics (speedup-x, transfers, bytes), which
// come from the simulated machine's clock.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFigure4 -benchtime=1x
package cgcm_test

import (
	"io"
	"testing"

	cgcm "cgcm"
	"cgcm/internal/bench"
	"cgcm/internal/core"
	"cgcm/internal/stats"
)

// BenchmarkTable1Applicability verifies CGCM's applicability row live:
// aliasing, irregular access, weak typing, pointer arithmetic, and double
// indirection all compile, run, and match reference output.
func BenchmarkTable1Applicability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		passed := 0
		for _, r := range results {
			if r.Passed {
				passed++
			}
		}
		if passed != len(results) {
			b.Fatalf("only %d/%d features pass", passed, len(results))
		}
		b.ReportMetric(float64(passed), "features-supported")
	}
}

// BenchmarkFigure2Schedules regenerates the three execution schedules and
// reports their simulated walls: the acyclic pattern must be fastest.
func BenchmarkFigure2Schedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sch, err := bench.CollectSchedules()
		if err != nil {
			b.Fatal(err)
		}
		if len(sch) != 3 {
			b.Fatalf("schedules = %d", len(sch))
		}
		cyclic, inspector, acyclic := sch[0].Wall, sch[1].Wall, sch[2].Wall
		if !(acyclic < inspector && acyclic < cyclic) {
			b.Fatalf("acyclic (%.3g) is not fastest (cyclic %.3g, inspector %.3g)",
				acyclic, cyclic, inspector)
		}
		b.ReportMetric(cyclic*1e6, "cyclic-us")
		b.ReportMetric(inspector*1e6, "inspector-us")
		b.ReportMetric(acyclic*1e6, "acyclic-us")
	}
}

// BenchmarkFigure4 reproduces the whole-program speedups program by
// program; each sub-benchmark reports the three systems' speedups over
// sequential CPU-only execution.
func BenchmarkFigure4(b *testing.B) {
	for _, p := range bench.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := bench.RunProgram(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(row.SpeedupIE, "inspector-x")
				b.ReportMetric(row.SpeedupUnopt, "unopt-x")
				b.ReportMetric(row.SpeedupOpt, "opt-x")
			}
		})
	}
}

// BenchmarkFigure4Geomeans runs the full 24-program suite and reports the
// headline geomeans (paper: 0.92x / 0.71x / 5.36x).
func BenchmarkFigure4Geomeans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAll(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		ie, un, op, _, _, _ := bench.Geomeans(rows)
		if op <= 1 || op <= un || op <= ie {
			b.Fatalf("optimized geomean %.3f does not dominate (ie %.3f, unopt %.3f)", op, ie, un)
		}
		b.ReportMetric(ie, "inspector-geomean-x")
		b.ReportMetric(un, "unopt-geomean-x")
		b.ReportMetric(op, "opt-geomean-x")
	}
}

// BenchmarkTable3Characteristics reproduces the program-characteristics
// table, reporting the applicability totals (paper: CGCM 101 kernels,
// inspector-executor/named-regions 80).
func BenchmarkTable3Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAll(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		totK, totIE := 0, 0
		gpuBound, commBound := 0, 0
		for _, r := range rows {
			totK += r.KernelsCGCM
			totIE += r.KernelsIE
			switch r.Limiting {
			case "GPU":
				gpuBound++
			case "Comm.":
				commBound++
			}
		}
		if totIE >= totK {
			b.Fatalf("inspector-executor applicability (%d) not below CGCM (%d)", totIE, totK)
		}
		b.ReportMetric(float64(totK), "cgcm-kernels")
		b.ReportMetric(float64(totIE), "ie-kernels")
		b.ReportMetric(float64(gpuBound), "gpu-bound-programs")
		b.ReportMetric(float64(commBound), "comm-bound-programs")
	}
}

func runOne(b *testing.B, name string, opts core.Options) *core.Report {
	b.Helper()
	p, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("program %s missing", name)
	}
	rep, err := core.CompileAndRun(p.Name, p.Source, opts)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAblationOptimGlueKernels measures what the glue kernel pass
// buys on srad (its motivating program).
func BenchmarkAblationOptimGlueKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := runOne(b, "srad", core.Options{Strategy: core.CGCMOptimized})
		off := runOne(b, "srad", core.Options{Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassGlueKernel: true}})
		b.ReportMetric(off.Stats.Wall/full.Stats.Wall, "glue-speedup-x")
		b.ReportMetric(float64(full.Stats.NumDtoH), "with-glue-DtoH")
		b.ReportMetric(float64(off.Stats.NumDtoH), "without-glue-DtoH")
	}
}

// BenchmarkAblationOptimAllocaPromotion measures alloca promotion on cfd
// (stack-local flux buffers inside a helper).
func BenchmarkAblationOptimAllocaPromotion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := runOne(b, "cfd", core.Options{Strategy: core.CGCMOptimized})
		off := runOne(b, "cfd", core.Options{Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassAllocaPromo: true}})
		b.ReportMetric(off.Stats.Wall/full.Stats.Wall, "allocapromo-speedup-x")
		b.ReportMetric(float64(full.Stats.NumHtoD), "with-ap-HtoD")
		b.ReportMetric(float64(off.Stats.NumHtoD), "without-ap-HtoD")
	}
}

// BenchmarkAblationOptimMapPromotion measures map promotion itself on
// jacobi (the textbook hoisting target).
func BenchmarkAblationOptimMapPromotion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := runOne(b, "jacobi-2d-imper", core.Options{Strategy: core.CGCMOptimized})
		off := runOne(b, "jacobi-2d-imper", core.Options{Strategy: core.CGCMOptimized, Ablate: core.PassSet{core.PassMapPromo: true}})
		b.ReportMetric(off.Stats.Wall/full.Stats.Wall, "mappromo-speedup-x")
	}
}

// BenchmarkGranularityUnitVsByte contrasts CGCM's allocation-unit
// transfers with the inspector-executor's per-byte oracle on a
// comm-bound program: the oracle moves radically fewer bytes yet loses
// on latency and inspection (§6.3's surprising result).
func BenchmarkGranularityUnitVsByte(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unit := runOne(b, "gemver", core.Options{Strategy: core.CGCMUnoptimized})
		byteWise := runOne(b, "gemver", core.Options{Strategy: core.InspectorExecutor})
		b.ReportMetric(float64(unit.Stats.BytesHtoD), "unit-bytes")
		b.ReportMetric(float64(byteWise.Stats.BytesHtoD), "oracle-bytes")
		b.ReportMetric(unit.Stats.Wall*1e6, "unit-us")
		b.ReportMetric(byteWise.Stats.Wall*1e6, "oracle-us")
	}
}

// BenchmarkOverlapAcyclic measures the CPU/GPU overlap that acyclic
// communication enables, by re-running optimized jacobi with synchronous
// launches.
func BenchmarkOverlapAcyclic(b *testing.B) {
	p, _ := bench.ByName("jacobi-2d-imper")
	for i := 0; i < b.N; i++ {
		async, err := cgcm.CompileAndRun(p.Name, p.Source, cgcm.Options{Strategy: cgcm.CGCMOptimized})
		if err != nil {
			b.Fatal(err)
		}
		sync := cgcm.DefaultCostModel()
		sync.SyncAfterLaunch = true
		blocked, err := cgcm.CompileAndRun(p.Name, p.Source, cgcm.Options{Strategy: cgcm.CGCMOptimized, Cost: &sync})
		if err != nil {
			b.Fatal(err)
		}
		if blocked.Stats.Wall < async.Stats.Wall {
			b.Fatal("synchronous launches came out faster than asynchronous")
		}
		b.ReportMetric(blocked.Stats.Wall/async.Stats.Wall, "overlap-benefit-x")
	}
}

// BenchmarkCompileSuite measures compiler throughput over the whole
// benchmark suite (front end + parallelizer + management + optimization).
func BenchmarkCompileSuite(b *testing.B) {
	progs := bench.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := cgcm.Compile(p.Name, p.Source, cgcm.Options{Strategy: cgcm.CGCMOptimized}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGeomeanSanity keeps the statistics helpers honest under the
// profile of values Figure 4 produces.
func BenchmarkGeomeanSanity(b *testing.B) {
	xs := []float64{0.03, 0.5, 1.2, 4.3, 8.5, 14.8}
	for i := 0; i < b.N; i++ {
		g := stats.Geomean(xs)
		if g < 0.03 || g > 14.8 {
			b.Fatal("geomean out of bounds")
		}
	}
}
