module cgcm

go 1.22
